"""Telemetry primitives: registry arithmetic, quantiles, spans, sinks."""

import json
import math
import pickle
import re
import threading

import numpy as np
import pytest

from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    get_registry,
    read_jsonl,
    set_registry,
    use_registry,
)
from repro.telemetry.registry import Histogram
from tests.conftest import make_latent_session


class TestCounters:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert registry.counter_value("requests_total") == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_labels_partition_the_family(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", method="spr").inc(3)
        registry.counter("runs_total", method="pbr").inc(5)
        assert registry.counter_value("runs_total", method="spr") == 3
        assert registry.counter_value("runs_total", method="pbr") == 5
        assert registry.counter_value("runs_total") == 0

    def test_same_name_and_labels_is_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c", a=1) is registry.counter("c", a=1)

    def test_counter_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("f_total", mode="a").inc(2)
        registry.counter("f_total", mode="b").inc(3)
        registry.counter("f_total").inc(1)
        assert registry.counter_total("f_total") == 6
        assert registry.counter_total("absent_total") == 0


class TestThreadSafety:
    def test_concurrent_creation_and_exposition(self):
        registry = MetricsRegistry()
        errors = []

        def hammer(worker):
            try:
                for i in range(200):
                    registry.counter("c_total", worker=worker, i=i % 7).inc()
                    registry.expose_text()
                    registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert registry.counter_total("c_total") == 800

    def test_registry_pickles_without_lock_or_listeners(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.add_listener(lambda event: None)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter_value("c_total") == 3
        clone.counter("c_total").inc()  # the lock is recreated on unpickle
        clone.expose_text()
        assert clone.counter_value("c_total") == 4


class TestEvents:
    def test_emit_broadcasts_to_listeners(self):
        registry = MetricsRegistry()
        registry.emit("dropped")  # no listeners: a free no-op
        seen = []
        registry.add_listener(seen.append)
        registry.emit("fault", mode="loss", count=2)
        assert seen == [{"type": "fault", "mode": "loss", "count": 2}]


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("active_pairs")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_quantiles_match_numpy_exactly_below_reservoir(self):
        rng = np.random.default_rng(7)
        values = rng.normal(50, 12, size=1000)
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), rel=1e-12
            )

    def test_count_sum_min_max_mean(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_reservoir_keeps_quantiles_close_on_long_streams(self):
        rng = np.random.default_rng(11)
        hist = Histogram("h", reservoir=256)
        values = rng.uniform(0, 1, size=20_000)
        for value in values:
            hist.observe(value)
        assert hist.count == 20_000
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.08)
        assert hist.quantile(0.95) == pytest.approx(0.95, abs=0.08)

    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestSpans:
    def test_nested_spans_record_parent_and_depth(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        names = [(s.name, s.parent, s.depth) for s in registry.spans]
        assert names == [("inner", "outer", 1), ("outer", None, 0)]

    def test_session_spans_attribute_cost_exclusively(self):
        session = make_latent_session([0.0, 3.0, 6.0])
        with use_registry() as registry:
            with registry.span("outer", session=session) as outer:
                session.charge_cost(5)
                with registry.span("inner", session=session) as inner:
                    session.charge_cost(7)
                session.charge_cost(2)
        assert inner.cost == 7
        assert outer.cost == 14
        assert outer.child_cost == 7
        assert outer.exclusive_cost == 7
        assert outer.exclusive_cost + inner.exclusive_cost == session.total_cost

    def test_span_survives_exceptions(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("doomed"):
                raise RuntimeError("boom")
        assert [s.name for s in registry.spans] == ["doomed"]

    def test_span_seconds_histogram_fed(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            pass
        hist = registry.histogram("span_seconds", span="phase")
        assert hist.count == 1

    def test_timer_observes_wall_time(self):
        registry = MetricsRegistry()
        with registry.timer("work_seconds", kind="test"):
            pass
        assert registry.histogram("work_seconds", kind="test").count == 1

    def test_span_cap_counts_drops(self):
        registry = MetricsRegistry()
        registry.MAX_SPANS = 2
        for _ in range(4):
            with registry.span("s"):
                pass
        assert len(registry.spans) == 2
        assert registry.dropped_spans == 2


PROMETHEUS_LINE = re.compile(
    r"^(?:# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*"
    r"|# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* \w+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})? (?:NaN|[+-]Inf|[-+0-9.eE]+))$"
)


class TestExposition:
    def test_expose_text_parses_as_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("crowd_microtasks_total").inc(1234)
        registry.counter("runs_total", method="spr", dataset="jester").inc(2)
        registry.gauge("active_pairs").set(7.5)
        for value in range(100):
            registry.histogram("workload", phase="rank").observe(value)
        text = registry.expose_text()
        assert text.endswith("\n")
        for line in text.splitlines():
            assert PROMETHEUS_LINE.match(line), line

    def test_expose_text_values_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", method="spr").inc(3)
        text = registry.expose_text()
        assert "# TYPE c_total counter" in text
        assert 'c_total{method="spr"} 3' in text

    def test_histograms_render_as_summaries(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        text = registry.expose_text()
        assert "# TYPE h summary" in text
        assert 'h{quantile="0.5"} 1' in text
        assert "h_sum 1" in text
        assert "h_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", path='a"b\\c').inc()
        assert 'c_total{path="a\\"b\\\\c"} 1' in registry.expose_text()

    def test_help_line_precedes_type_for_catalog_metrics(self):
        registry = MetricsRegistry()
        registry.counter("crowd_microtasks_total").inc(5)
        lines = registry.expose_text().splitlines()
        help_idx = lines.index(
            "# HELP crowd_microtasks_total "
            "Judgments purchased (total monetary cost)."
        )
        assert lines[help_idx + 1] == "# TYPE crowd_microtasks_total counter"

    def test_describe_overrides_catalog_help(self):
        registry = MetricsRegistry()
        registry.counter("crowd_microtasks_total").inc()
        registry.describe("crowd_microtasks_total", "Custom text.")
        text = registry.expose_text()
        assert "# HELP crowd_microtasks_total Custom text." in text
        assert "Judgments purchased" not in text

    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("weird_total").inc()
        registry.describe("weird_total", "line one\nback\\slash")
        text = registry.expose_text()
        assert "# HELP weird_total line one\\nback\\\\slash" in text
        for line in text.splitlines():
            assert PROMETHEUS_LINE.match(line), line

    def test_undescribed_custom_metric_has_no_help_line(self):
        registry = MetricsRegistry()
        registry.counter("anonymous_total").inc()
        text = registry.expose_text()
        assert "# TYPE anonymous_total counter" in text
        assert "# HELP anonymous_total" not in text

    def test_summary_table_mentions_everything(self):
        registry = MetricsRegistry()
        registry.counter("crowd_microtasks_total").inc(9)
        registry.histogram("workload").observe(4)
        with registry.span("spr.rank"):
            pass
        table = registry.summary_table()
        assert "crowd_microtasks_total" in table
        assert "workload" in table
        assert "spr.rank" in table


class TestSnapshotAndJsonl:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", method="spr").inc(4)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.5)
        with registry.span("phase"):
            pass
        snapshot = json.loads(json.dumps(registry.snapshot()))
        counters = {c["name"]: c for c in snapshot["counters"]}
        assert counters["c_total"]["value"] == 4
        assert counters["c_total"]["labels"] == {"method": "spr"}
        assert snapshot["histograms"][0]["count"] == 1
        assert snapshot["spans"][0]["name"] == "phase"

    def test_jsonl_sink_streams_spans_and_snapshot(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        registry = MetricsRegistry()
        with JsonlSink(path) as sink:
            registry.add_listener(sink.write_event)
            registry.counter("c_total").inc(2)
            with registry.span("phase.a"):
                pass
            sink.write_snapshot(registry)
        events = read_jsonl(path)
        kinds = [event["type"] for event in events]
        assert kinds[0] == "span"
        assert kinds[-1] == "snapshot"
        span = events[0]
        assert span["name"] == "phase.a"
        snapshot = events[-1]
        assert snapshot["counters"][0]["value"] == 2
        assert {e["name"] for e in events if e["type"] == "counter"} == {"c_total"}

    def test_sink_is_lazy(self, tmp_path):
        path = tmp_path / "never.jsonl"
        JsonlSink(path).close()
        assert not path.exists()


class TestRegistryInjection:
    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            assert scoped is not before
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_session_override_beats_global(self):
        from repro.crowd.oracle import LatentScoreOracle
        from repro.crowd.session import CrowdSession

        private = MetricsRegistry()
        session = CrowdSession(
            LatentScoreOracle(np.array([0.0, 4.0])), seed=0, telemetry=private
        )
        with use_registry() as scoped:
            session.compare(1, 0)
        assert private.counter_value("crowd_comparisons_total") == 1
        assert scoped.counter_value("crowd_comparisons_total") == 0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        with registry.span("s"):
            pass
        registry.reset()
        assert registry.snapshot()["counters"] == []
        assert registry.spans == []


class TestRegistryMerge:
    """merge(): counters add, gauges last-write, histograms combine,
    spans concatenate — the reconciliation the parallel engine relies on."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("total", method="spr").inc(3)
        b.counter("total", method="spr").inc(4)
        b.counter("total", method="heap").inc(2)
        a.merge(b)
        assert a.counter_value("total", method="spr") == 7
        assert a.counter_value("total", method="heap") == 2
        # the source registry is untouched
        assert b.counter_value("total", method="spr") == 4

    def test_gauges_last_write_wins(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        a.gauge("active").set(1)
        b.gauge("active").set(5)
        c.gauge("active").set(2)
        a.merge(b, c)
        assert a.gauge("active").value == 2

    def test_histograms_combine_exactly_below_reservoir(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            a.histogram("work").observe(v)
        for v in (10.0, 20.0):
            b.histogram("work").observe(v)
        a.merge(b)
        hist = a.histogram("work")
        assert hist.count == 5
        assert hist.sum == 36.0
        assert hist.min == 1.0 and hist.max == 20.0
        assert hist.quantile(1.0) == 20.0
        assert hist.quantile(0.0) == 1.0

    def test_histogram_merge_matches_serial_observation_order(self):
        serial = MetricsRegistry()
        part_a, part_b = MetricsRegistry(), MetricsRegistry()
        for v in range(10):
            serial.histogram("work").observe(float(v))
            (part_a if v < 5 else part_b).histogram("work").observe(float(v))
        merged = MetricsRegistry().merge(part_a, part_b)
        assert merged.histogram("work").percentiles() == (
            serial.histogram("work").percentiles()
        )

    def test_histogram_merge_beyond_reservoir_keeps_exact_moments(self):
        small = Histogram("work", reservoir=8)
        other = Histogram("work", reservoir=8)
        for v in range(6):
            small.observe(float(v))
        for v in range(6, 20):
            other.observe(float(v))
        small.merge_from(other)
        assert small.count == 20
        assert small.sum == sum(range(20))
        assert small.min == 0.0 and small.max == 19.0
        assert len(small._values) == 8  # capped, deterministic reservoir

    def test_empty_histogram_merge_is_noop(self):
        a = MetricsRegistry()
        a.histogram("work").observe(1.0)
        a.merge(MetricsRegistry())
        assert a.histogram("work").count == 1

    def test_spans_concatenate_in_merge_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        with a.span("first"):
            pass
        with b.span("second"):
            pass
        with b.span("third"):
            pass
        a.merge(b)
        assert [s.name for s in a.spans] == ["first", "second", "third"]

    def test_span_overflow_counts_as_dropped(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        with b.span("late"):
            pass
        b.dropped_spans = 3
        original_cap = MetricsRegistry.MAX_SPANS
        MetricsRegistry.MAX_SPANS = 0
        try:
            a.merge(b)
        finally:
            MetricsRegistry.MAX_SPANS = original_cap
        assert a.spans == []
        assert a.dropped_spans == 4  # 1 overflow + 3 inherited

    def test_merge_into_self_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge(registry)

    def test_merge_returns_self_for_chaining(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("x").inc()
        assert a.merge(b) is a

    def test_merged_snapshot_equals_serial_snapshot(self):
        """Two halves of a workload merged == the same workload serial."""
        serial = MetricsRegistry()
        halves = [MetricsRegistry(), MetricsRegistry()]
        for index, target in enumerate([serial, serial, halves[0], halves[1]]):
            target.counter("runs_total").inc()
            target.histogram("cost").observe(float(index % 2))
            target.gauge("phase").set(index % 2)
        merged = MetricsRegistry().merge(*halves)
        assert merged.snapshot() == serial.snapshot()


class TestBatchedInstruments:
    """The batch twins (``Counter.add``, ``Histogram.observe_many``) must be
    indistinguishable from N sequential single-event calls."""

    def test_counter_add_equals_n_incs(self):
        registry = MetricsRegistry()
        registry.counter("batched_total").add(137)
        for _ in range(137):
            registry.counter("sequential_total").inc()
        assert registry.counter_value("batched_total") == registry.counter_value(
            "sequential_total"
        )

    def test_counter_add_zero_and_negative(self):
        counter = MetricsRegistry().counter("c")
        counter.add(0)
        assert counter.value == 0
        with pytest.raises(ValueError):
            counter.add(-3)

    def test_observe_many_bit_identical_below_reservoir(self):
        values = np.random.default_rng(3).normal(10.0, 4.0, 200).tolist()
        batched, sequential = Histogram("a"), Histogram("b")
        batched.observe_many(values)
        for value in values:
            sequential.observe(value)
        # sum accumulates in observation order — float addition is not
        # associative, so these match only if the batch path keeps the
        # sequential left-to-right reduction.
        assert batched.sum == sequential.sum
        assert batched.count == sequential.count
        assert (batched.min, batched.max) == (sequential.min, sequential.max)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert batched.quantile(q) == sequential.quantile(q)

    def test_observe_many_past_reservoir_matches_sequential(self):
        values = np.random.default_rng(5).uniform(0, 1, 900).tolist()
        batched, sequential = Histogram("a", reservoir=256), Histogram(
            "b", reservoir=256
        )
        # Split the stream so the batch call straddles the reservoir cap.
        batched.observe_many(values[:200])
        batched.observe_many(values[200:])
        for value in values:
            sequential.observe(value)
        assert batched.count == sequential.count
        assert batched.sum == sequential.sum
        assert (batched.min, batched.max) == (sequential.min, sequential.max)

    def test_observe_many_empty_is_noop(self):
        hist = Histogram("h")
        hist.observe_many([])
        assert hist.count == 0

    def test_has_listeners_tracks_subscription(self):
        registry = MetricsRegistry()
        assert not registry.has_listeners
        listener = lambda event: None
        registry.add_listener(listener)
        assert registry.has_listeners
        registry.remove_listener(listener)
        assert not registry.has_listeners
