"""Telemetry wired through sessions, SPR, the runner, tracing and the CLI."""

import logging
import re

import numpy as np
import pytest

from repro.cli import main
from repro.core.spr import spr_topk
from repro.crowd.oracle import JudgmentOracle, BinaryOracle
from repro.errors import BudgetExhaustedError
from repro.experiments import ExperimentParams
from repro.experiments.runner import run_method
from repro.telemetry import use_registry, read_jsonl
from repro.tracing import trace_session
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(20)]


def fresh_session(**kwargs):
    defaults = dict(sigma=0.5, min_workload=5, batch_size=10, budget=120)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=3, **defaults)


class TestSessionInstrumentation:
    def test_compare_counters(self):
        with use_registry() as registry:
            session = fresh_session()
            session.compare(10, 0)
            session.compare(10, 0)  # cache replay
        assert registry.counter_value("crowd_comparisons_total") == 2
        assert registry.counter_value("crowd_cache_hits_total") == 1
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost
        assert registry.histogram("crowd_comparison_workload").count == 2

    def test_budget_tie_counter(self):
        with use_registry() as registry:
            session = make_latent_session(
                [0.0, 0.001], sigma=3.0, min_workload=5, batch_size=10, budget=30
            )
            record = session.compare(1, 0)
        assert record.outcome.name == "TIE"
        assert registry.counter_value("crowd_budget_ties_total") == 1

    def test_microtasks_reconcile_with_pool_purchases(self):
        from repro.crowd.pool import RacingPool

        with use_registry() as registry:
            session = fresh_session()
            pool = RacingPool(session, [(i, 0) for i in range(1, 8)])
            pool.run_to_completion()
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost
        assert registry.counter_value("crowd_pool_rounds_total") > 0

    def test_forked_session_reports_to_same_registry(self):
        with use_registry() as registry:
            session = fresh_session()
            fork = session.fork(budget=40)
            fork.compare(12, 1)
        assert registry.counter_value("crowd_comparisons_total") == 1
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost


class TestSPRPhaseSpans:
    def test_phase_spans_reconcile_with_cost_ledger(self):
        with use_registry() as registry:
            session = fresh_session()
            spr_topk(session, list(range(20)), 4)
        names = {span.name for span in registry.spans}
        assert {"spr.select", "spr.partition", "spr.rank"} <= names
        span_cost = sum(span.exclusive_cost or 0 for span in registry.spans)
        assert span_cost == session.total_cost
        assert span_cost == registry.counter_value("crowd_microtasks_total")

    def test_phase_spans_reconcile_rounds(self):
        with use_registry() as registry:
            session = fresh_session()
            spr_topk(session, list(range(20)), 4)
        span_rounds = sum(span.exclusive_rounds or 0 for span in registry.spans)
        assert span_rounds == session.total_rounds

    def test_deferments_counted(self):
        with use_registry() as registry:
            session = make_latent_session(
                [0.0, 0.01, 0.02, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0],
                sigma=3.0, min_workload=5, batch_size=10, budget=20,
            )
            spr_topk(session, list(range(10)), 3)
        # With a tiny per-pair budget and heavy noise some pairs must tie.
        assert registry.counter_value("spr_deferments_total") >= 0  # smoke
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost


class TestRunnerInstrumentation:
    def test_runner_emits_per_run_metrics(self):
        with use_registry() as registry:
            params = ExperimentParams(
                dataset="jester", n_items=12, k=3, n_runs=2, seed=5
            )
            stats = run_method("spr", params)
        assert stats.n_runs == 2
        assert registry.counter_value("experiment_runs_total", method="spr") == 2
        hist = registry.histogram("experiment_run_wall_seconds", method="spr")
        assert hist.count == 2
        run_spans = [s for s in registry.spans if s.name == "experiment.run"]
        assert len(run_spans) == 2
        assert all(span.cost > 0 for span in run_spans)

    def test_spr_spans_nest_under_run_span(self):
        with use_registry() as registry:
            params = ExperimentParams(
                dataset="jester", n_items=12, k=3, n_runs=1, seed=5
            )
            run_method("spr", params)
        children = [s for s in registry.spans if s.parent == "experiment.run"]
        assert children, "SPR phase spans should nest under experiment.run"
        run_span = next(s for s in registry.spans if s.name == "experiment.run")
        assert run_span.child_cost == sum(
            s.cost for s in registry.spans if s.parent == "experiment.run"
        )


class TestTracingDetach:
    def test_detach_stops_recording(self):
        session = fresh_session()
        trace = trace_session(session)
        session.compare(10, 0)
        trace.detach()
        session.compare(11, 0)
        assert trace.total_comparisons == 1

    def test_double_attachment_does_not_double_count(self):
        session = fresh_session()
        trace = trace_session(session)
        trace.attach(session)  # second attachment must be a no-op
        session.compare(10, 0)
        assert trace.total_comparisons == 1

    def test_detach_is_idempotent(self):
        session = fresh_session()
        trace = trace_session(session)
        trace.detach()
        trace.detach()
        session.compare(10, 0)
        assert trace.total_comparisons == 0

    def test_attach_to_second_session_requires_detach(self):
        session = fresh_session()
        other = fresh_session()
        trace = trace_session(session)
        with pytest.raises(ValueError):
            trace.attach(other)
        trace.detach()
        trace.attach(other)
        other.compare(10, 0)
        assert trace.total_comparisons == 1

    def test_context_manager_detaches_and_finishes(self):
        session = fresh_session()
        with trace_session(session) as trace:
            session.compare(10, 0)
        session.compare(11, 0)  # after the block: not recorded
        assert trace.total_comparisons == 1
        summaries = {s.phase: s for s in trace.phase_summaries()}
        assert summaries["query"].comparisons == 1

    def test_two_independent_traces_each_record_once(self):
        session = fresh_session()
        first = trace_session(session)
        second = trace_session(session)
        session.compare(10, 0)
        assert first.total_comparisons == 1
        assert second.total_comparisons == 1


class TestOracleAndWorkerCounters:
    def test_binary_oracle_counts_wasted_judgments(self):
        class ZeroThenOnes(JudgmentOracle):
            """First draw ties exactly, later draws separate."""

            bounds = (-1.0, 1.0)

            def __init__(self):
                self.calls = 0

            def draw(self, i, j, size, rng):
                self.calls += 1
                if self.calls == 1:
                    return np.zeros(size)
                return np.ones(size)

        with use_registry() as registry:
            oracle = BinaryOracle(ZeroThenOnes())
            out = oracle.draw(0, 1, 4, np.random.default_rng(0))
        assert np.all(out == 1)
        assert oracle.wasted == 4
        assert registry.counter_value("oracle_wasted_judgments_total") == 4

    def test_careless_workers_counted(self):
        from repro.crowd.workers import CarelessWorkerNoise

        with use_registry() as registry:
            noise = CarelessWorkerNoise(sigma=1.0, careless_rate=1.0)
            noise.sample(32, np.random.default_rng(0))
        assert registry.counter_value("worker_careless_judgments_total") == 32


class TestLogging:
    def test_budget_exhaustion_logged(self, caplog):
        session = make_latent_session(
            [0.0, 0.05], sigma=3.0, min_workload=5, batch_size=10, budget=500,
        )
        session.cost.ceiling = 20
        with caplog.at_level(logging.WARNING, logger="repro.crowd.ledger"):
            with pytest.raises(BudgetExhaustedError):
                session.compare(1, 0)
        assert any("budget exhausted" in r.message for r in caplog.records)

    def test_no_print_calls_in_library_code(self):
        import ast
        import pathlib
        import repro

        src = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.name == "cli.py":  # the CLI is the user interface
                continue
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, offenders


class TestCLITelemetry:
    def test_query_writes_jsonl_and_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        code = main(
            [
                "query", "--dataset", "jester", "--method", "spr",
                "-k", "3", "--n-items", "25", "--seed", "1",
                "--telemetry", str(path),
            ]
        )
        assert code == 0
        events = read_jsonl(path)
        span_names = {e["name"] for e in events if e["type"] == "span"}
        assert {"spr.select", "spr.partition", "spr.rank"} <= span_names

        snapshot = events[-1]
        assert snapshot["type"] == "snapshot"
        counters = {c["name"]: c["value"] for c in snapshot["counters"]}
        out = capsys.readouterr().out
        tmc = int(re.search(r"TMC: ([\d,]+)", out).group(1).replace(",", ""))
        assert counters["crowd_microtasks_total"] == tmc
        span_cost = sum(
            e["exclusive_cost"] for e in events if e["type"] == "span"
        )
        assert span_cost == tmc
        assert "telemetry summary" in out
        assert "crowd_microtasks_total" in out

    def test_unwritable_telemetry_path_fails_fast(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        code = main(
            [
                "query", "--dataset", "jester", "--method", "spr",
                "-k", "3", "--n-items", "15", "--seed", "0",
                "--telemetry", str(blocker / "t.jsonl"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "cannot write telemetry" in captured.err
        assert "top-3" not in captured.out  # failed before the query ran

    def test_query_without_telemetry_stays_quiet(self, capsys):
        code = main(
            [
                "query", "--dataset", "jester", "--method", "quickselect",
                "-k", "2", "--n-items", "15", "--seed", "0",
            ]
        )
        assert code == 0
        assert "telemetry summary" not in capsys.readouterr().out

    def test_verbose_flag_configures_repro_logger(self, capsys):
        code = main(["-v", "datasets"])
        assert code == 0
        assert logging.getLogger("repro").level == logging.INFO


class TestInstrumentHandleCaching:
    """Hot-path counter handles are cached per registry, not per process.

    ``Comparator`` and ``BinaryOracle`` hoist their ``counter()`` lookups
    onto cached handles; these regressions pin that the cache is keyed on
    registry *identity*, so ``use_registry`` scoping still lands counts in
    the active registry after the handle has been warmed elsewhere.
    """

    @staticmethod
    def _comparator():
        from repro.config import ComparisonConfig
        from repro.core.comparison import Comparator
        from repro.crowd.oracle import LatentScoreOracle
        from repro.crowd.workers import GaussianNoise

        oracle = LatentScoreOracle(np.array([0.0, 5.0]), GaussianNoise(0.5))
        return Comparator(
            oracle, ComparisonConfig(min_workload=4, budget=100)
        )

    def test_comparator_handle_rebinds_on_registry_change(self):
        from repro.core.cache import JudgmentCache

        comparator = self._comparator()
        with use_registry() as first:
            record = comparator.compare(1, 0, np.random.default_rng(0))
        assert record.cost > 0
        drawn_first = first.counter_value("oracle_judgments_total")
        assert drawn_first >= record.cost

        # Same comparator instance, new scoped registry: the warmed handle
        # must not leak counts back into ``first``.
        comparator.cache = JudgmentCache()
        with use_registry() as second:
            record2 = comparator.compare(1, 0, np.random.default_rng(1))
        assert record2.cost > 0
        assert second.counter_value("oracle_judgments_total") >= record2.cost
        assert first.counter_value("oracle_judgments_total") == drawn_first

    def test_binary_oracle_handle_rebinds_on_registry_change(self):
        class ZeroThenOnes(JudgmentOracle):
            bounds = (-1.0, 1.0)

            def __init__(self):
                self.calls = 0

            def draw(self, i, j, size, rng):
                self.calls += 1
                if self.calls % 2 == 1:
                    return np.zeros(size)
                return np.ones(size)

        oracle = BinaryOracle(ZeroThenOnes())
        with use_registry() as first:
            oracle.draw(0, 1, 3, np.random.default_rng(0))
        assert first.counter_value("oracle_wasted_judgments_total") == 3

        with use_registry() as second:
            oracle.draw(0, 1, 5, np.random.default_rng(0))
        assert second.counter_value("oracle_wasted_judgments_total") == 5
        assert first.counter_value("oracle_wasted_judgments_total") == 3
