"""Configuration validation and derived quantities."""

import pytest

from repro.config import (
    UNBOUNDED_BUDGET_CAP,
    ComparisonConfig,
    SPRConfig,
)
from repro.errors import ConfigError


class TestComparisonConfig:
    def test_defaults_match_table6(self):
        config = ComparisonConfig()
        assert config.confidence == 0.98
        assert config.budget == 1000
        assert config.min_workload == 30
        assert config.batch_size == 30
        assert config.estimator == "student"

    def test_alpha_is_complement_of_confidence(self):
        assert ComparisonConfig(confidence=0.9).alpha == pytest.approx(0.1)

    def test_unbounded_budget_capped(self):
        config = ComparisonConfig(budget=None)
        assert config.effective_budget == UNBOUNDED_BUDGET_CAP

    def test_bounded_budget_passthrough(self):
        assert ComparisonConfig(budget=500).effective_budget == 500

    def test_rounds_for_exact_multiple(self):
        assert ComparisonConfig(batch_size=30).rounds_for(90) == 3

    def test_rounds_for_partial_batch(self):
        assert ComparisonConfig(batch_size=30).rounds_for(91) == 4

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_confidence_rejected(self, confidence):
        with pytest.raises(ConfigError):
            ComparisonConfig(confidence=confidence)

    def test_budget_below_min_workload_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(budget=10, min_workload=30)

    def test_min_workload_below_two_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(min_workload=1)

    def test_zero_batch_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(batch_size=0)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(estimator="bayes")

    def test_with_returns_validated_copy(self):
        config = ComparisonConfig()
        other = config.with_(confidence=0.9)
        assert other.confidence == 0.9
        assert config.confidence == 0.98
        with pytest.raises(ConfigError):
            config.with_(confidence=2.0)


class TestSPRConfig:
    def test_defaults(self):
        config = SPRConfig()
        assert config.sweet_spot == 1.5
        assert config.max_reference_changes == 2

    def test_sweet_spot_must_exceed_one(self):
        with pytest.raises(ConfigError):
            SPRConfig(sweet_spot=1.0)

    def test_negative_reference_changes_rejected(self):
        with pytest.raises(ConfigError):
            SPRConfig(max_reference_changes=-1)

    def test_selection_budget_below_min_workload_rejected(self):
        with pytest.raises(ConfigError):
            SPRConfig(selection_comparison_budget=10)

    def test_selection_budget_at_min_workload_accepted(self):
        config = SPRConfig(selection_comparison_budget=30)
        assert config.selection_comparison_budget == 30

    def test_with_copies(self):
        config = SPRConfig()
        assert config.with_(sweet_spot=2.0).sweet_spot == 2.0
        assert config.sweet_spot == 1.5
