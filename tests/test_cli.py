"""The crowd-topk command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query"])
        assert args.dataset == "jester"
        assert args.method == "spr"
        assert args.k == 10

    def test_query_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--method", "bogosort"])

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("imdb", "book", "jester", "photo", "peopleage"):
            assert name in out

    def test_query_end_to_end(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "jester",
                "--method", "spr",
                "-k", "3",
                "--n-items", "25",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TMC:" in out
        assert "NDCG@3:" in out
        assert "true rank" in out

    def test_query_other_method(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "jester",
                "--method", "quickselect",
                "-k", "2",
                "--n-items", "20",
            ]
        )
        assert code == 0
        assert "quickselect" in capsys.readouterr().out

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15"]) == 0
        assert "n_b - n" in capsys.readouterr().out

    def test_experiment_peopleage(self, capsys):
        assert main(["experiment", "peopleage", "--runs", "1"]) == 0
        assert "PeopleAge" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_feasible(self, capsys):
        code = main(
            [
                "plan", "--n-items", "200", "-k", "5",
                "--target-precision", "0.5", "--dollars", "1000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out
        assert "§5.4" in out

    def test_plan_infeasible_exit_code(self, capsys):
        code = main(
            [
                "plan", "--n-items", "500", "-k", "10",
                "--target-precision", "0.6", "--dollars", "0.01",
            ]
        )
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().out
