"""Every example script must run cleanly — they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they did"


def test_quickstart_reports_the_key_quantities():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = result.stdout
    assert "total monetary cost" in out
    assert "NDCG@10" in out
    assert "reference" in out
