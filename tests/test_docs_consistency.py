"""Documentation ↔ code consistency: the docs must not rot."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDeliverablesPresent:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
            "CONTRIBUTING.md", "CHANGELOG.md", "pyproject.toml",
            "docs/paper_mapping.md", "docs/cost_model.md",
            "docs/tutorial.md", "docs/extending.md",
            "docs/observability.md", "docs/robustness.md",
        ],
    )
    def test_file_exists_and_non_trivial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 200, name


class TestDesignIndex:
    def test_every_bench_target_in_design_exists(self):
        design = read("DESIGN.md")
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert targets, "DESIGN.md must index bench targets"
        missing = [t for t in targets if not (ROOT / "benchmarks" / t).exists()]
        assert not missing, missing

    def test_every_bench_file_emits_results(self):
        # Each benchmark must call emit(...) so its artifact lands in
        # benchmarks/results/.
        missing = []
        for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            if "emit(" not in path.read_text():
                missing.append(path.name)
        assert not missing, missing

    def test_modules_named_in_design_exist(self):
        design = read("DESIGN.md")
        referenced = set(re.findall(r"`(repro/[\w/]+\.py)`", design))
        missing = [
            module
            for module in referenced
            if not (ROOT / "src" / module).exists()
        ]
        assert not missing, missing


class TestExperimentsRecord:
    def test_mentions_every_paper_asset(self):
        experiments = read("EXPERIMENTS.md")
        for asset in (
            "Table 3", "Table 4", "Table 7",
            "Figure 12", "Figure 13", "Figure 14", "Figure 15",
            "Figure 16", "Figure 17", "PeopleAge",
        ):
            assert asset in experiments, asset
        # the scalability figures are covered as a block
        assert "Figures 8–11" in experiments or "Figures 8-11" in experiments

    def test_every_named_bench_exists(self):
        experiments = read("EXPERIMENTS.md")
        names = set(re.findall(r"bench_\w+", experiments))
        bench_files = [p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")]
        # Prose may use range shorthand ("bench_fig08..11"), so a name
        # counts as resolved when some bench file starts with it.
        missing = [
            name
            for name in names
            if not any(stem.startswith(name) for stem in bench_files)
        ]
        assert not missing, missing


class TestReadme:
    def test_examples_listed_exist(self):
        readme = read("README.md")
        for script in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / script).exists(), script

    def test_cites_the_paper(self):
        readme = read("README.md")
        assert "SIGMOD 2017" in readme
        assert "3035918.3035953" in readme  # the DOI

    def test_mentions_offline_install_fallback(self):
        assert "setup.py develop" in read("README.md")


class TestMetricCatalog:
    """docs/observability.md's metric tables must match what the code
    emits — both directions, so neither side can rot."""

    #: Metric name literals the library creates instruments for —
    #: directly or through RacingPool's cached-handle ``_counter`` helper.
    SOURCE_METRIC = re.compile(
        r'\.(?:counter|gauge|histogram|_counter)\(\s*\n?\s*"([a-z0-9_]+)"'
    )
    #: First-column `name` / `name{labels}` cells of the docs tables.
    DOC_METRIC = re.compile(r"^\| `([a-z0-9_]+)(?:\{[^}]*\})?` \|", re.M)

    def _source_names(self) -> set:
        names = set()
        for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
            names |= set(self.SOURCE_METRIC.findall(path.read_text()))
        return names

    def _doc_names(self) -> set:
        # Only the "Metric catalog" section tables name metrics; later
        # tables (flight-recorder event types, HTTP routes) do not.
        text = read("docs/observability.md")
        start = text.index("## Metric catalog")
        end = text.index("\n## ", start + 1)
        return set(self.DOC_METRIC.findall(text[start:end]))

    def test_every_emitted_metric_is_documented(self):
        undocumented = self._source_names() - self._doc_names()
        assert not undocumented, (
            f"metrics emitted but missing from docs/observability.md: "
            f"{sorted(undocumented)}"
        )

    def test_every_documented_metric_is_emitted(self):
        # Span names in the docs table are opened via span(), not
        # counter()/histogram(), so exclude the span table's rows.
        span_names = {"spr.select", "spr.partition", "spr.rank"}
        phantom = {
            name
            for name in self._doc_names() - self._source_names()
            if name not in span_names
        }
        assert not phantom, (
            f"metrics documented in docs/observability.md but never "
            f"emitted: {sorted(phantom)}"
        )

    def test_catalog_help_text_covers_no_phantom_metrics(self):
        from repro.telemetry.registry import METRIC_HELP

        phantom = set(METRIC_HELP) - self._source_names()
        assert not phantom, (
            f"METRIC_HELP entries without a matching instrument: "
            f"{sorted(phantom)}"
        )


class TestPaperMapping:
    def test_mapped_modules_exist(self):
        mapping = read("docs/paper_mapping.md")
        for module in set(re.findall(r"`(repro/[\w/]+\.py)`", mapping)):
            assert (ROOT / "src" / module).exists(), module
        for dotted in set(re.findall(r"`(repro\.[\w.]+)`", mapping)):
            parts = dotted.split(".")
            # resolve progressively: module path or attribute of a module
            import importlib

            for cut in range(len(parts), 0, -1):
                try:
                    module = importlib.import_module(".".join(parts[:cut]))
                except ModuleNotFoundError:
                    continue
                obj = module
                ok = True
                for attr in parts[cut:]:
                    if not hasattr(obj, attr):
                        ok = False
                        break
                    obj = getattr(obj, attr)
                assert ok, dotted
                break
            else:
                pytest.fail(f"unresolvable reference {dotted}")
