"""Query tracing: event capture, phase accounting, exports."""

import json

import pytest

from repro.core.spr import spr_topk
from repro.tracing import trace_session
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(12)]


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.4, min_workload=5, batch_size=10, budget=100)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


class TestEventCapture:
    def test_every_compare_is_recorded(self):
        session = clean_session()
        trace = trace_session(session)
        session.compare(5, 0)
        session.compare(9, 1)
        assert trace.total_comparisons == 2
        assert trace.events[0].left == 5
        assert trace.events[0].outcome == "LEFT"
        assert trace.events[1].cumulative_cost == session.total_cost

    def test_group_comparisons_traced_too(self):
        session = clean_session()
        trace = trace_session(session)
        session.compare_many([(5, 0), (9, 1)])
        assert trace.total_comparisons == 2

    def test_cached_comparisons_flagged(self):
        session = clean_session()
        trace = trace_session(session)
        session.compare(5, 0)
        session.compare(5, 0)
        assert trace.cached_comparisons == 1

    @pytest.mark.faultfree  # exact per-pair costs shift under faults
    def test_most_expensive_orders_by_cost(self):
        session = make_latent_session(
            [0.0, 5.0, 5.05], sigma=2.0,
            min_workload=5, batch_size=10, budget=300,
        )
        trace = trace_session(session)
        session.compare(1, 0)   # easy: gap 5
        session.compare(2, 1)   # near-tie: gap 0.05
        top = trace.most_expensive(1)
        assert top[0].left == 2

    def test_record_return_value_passthrough(self):
        session = clean_session()
        trace_session(session)
        record = session.compare(5, 0)
        assert record.winner == 5


class TestPhases:
    def test_phase_totals_reconcile_with_ledgers(self):
        session = clean_session()
        trace = trace_session(session)
        trace.mark_phase(session, "warmup")
        session.compare(5, 0)
        trace.mark_phase(session, "main")
        session.compare(9, 1)
        session.compare(11, 2)
        trace.finish(session)

        summaries = {s.phase: s for s in trace.phase_summaries()}
        assert summaries["warmup"].comparisons == 1
        assert summaries["main"].comparisons == 2
        assert (
            summaries["warmup"].cost + summaries["main"].cost
            + summaries.get("query", summaries["warmup"]).cost * 0
            == session.total_cost
        )

    def test_full_spr_query_traced(self):
        session = clean_session()
        trace = trace_session(session)
        spr_topk(session, list(range(12)), 3)
        trace.finish(session)
        assert trace.total_comparisons > 0
        # The racing pool buys in bulk: ledger totals still reconcile.
        total_cost = sum(s.cost for s in trace.phase_summaries())
        assert total_cost == session.total_cost


class TestExports:
    def test_text_rendering_and_truncation(self):
        session = clean_session()
        trace = trace_session(session)
        for item in range(1, 12):
            session.compare(item, 0)
        text = trace.to_text(limit=5)
        assert "more events" in text
        assert "COMP(1, 0)" in text

    def test_json_export(self):
        session = clean_session()
        trace = trace_session(session)
        session.compare(5, 0)
        trace.finish(session)
        payload = json.loads(trace.to_json())
        assert payload["events"][0]["left"] == 5
        assert payload["phases"][0]["phase"] == "query"
