"""Thurstone win probability."""

import pytest
from scipy.special import ndtr

from repro.stats.thurstone import win_probability


def test_equal_means_is_half():
    assert win_probability(0.0, 1.0, 0.0, 1.0) == pytest.approx(0.5)


def test_matches_phi_formula():
    expected = float(ndtr((2.0 - 1.0) / (0.5**2 + 0.75**2) ** 0.5))
    assert win_probability(2.0, 0.25, 1.0, 0.5625) == pytest.approx(expected)


def test_symmetry():
    p = win_probability(1.0, 0.3, 0.2, 0.7)
    q = win_probability(0.2, 0.7, 1.0, 0.3)
    assert p + q == pytest.approx(1.0)


def test_degenerate_variances_resolve_by_mean():
    assert win_probability(1.0, 0.0, 0.0, 0.0) == 1.0
    assert win_probability(-1.0, 0.0, 0.0, 0.0) == 0.0
    assert win_probability(0.5, 0.0, 0.5, 0.0) == 0.5


def test_monotone_in_mean_gap():
    probs = [win_probability(mu, 1.0, 0.0, 1.0) for mu in (-1.0, 0.0, 1.0, 2.0)]
    assert probs == sorted(probs)


def test_larger_spread_pulls_towards_half():
    tight = win_probability(1.0, 0.01, 0.0, 0.01)
    loose = win_probability(1.0, 4.0, 0.0, 4.0)
    assert tight > loose > 0.5


def test_negative_variance_rejected():
    with pytest.raises(ValueError):
        win_probability(0.0, -1.0, 0.0, 1.0)
