"""The query planner: §5.4-driven configuration recommendations."""

import pytest

from repro.errors import ConfigError
from repro.planner import SPR_OVERHEAD_FACTOR, plan_query


class TestConfidenceChoice:
    def test_low_target_allows_low_confidence(self):
        plan = plan_query(200, 10, target_precision=0.5)
        assert plan.config.confidence >= 0.80
        assert plan.expected_precision_floor >= 0.5

    def test_high_target_forces_high_confidence(self):
        plan = plan_query(200, 10, target_precision=0.65)
        assert plan.config.confidence >= 0.98

    def test_unreachable_target_rejected(self):
        # (1-a)/c can never exceed 1/c ≈ 0.67 at c=1.5.
        with pytest.raises(ConfigError):
            plan_query(200, 10, target_precision=0.7)

    def test_floor_meets_target(self):
        for target in (0.45, 0.55, 0.6):
            plan = plan_query(300, 10, target_precision=target)
            assert plan.expected_precision_floor >= target


class TestBudgeting:
    def test_no_cap_prefers_largest_budget(self):
        plan = plan_query(100, 5, target_precision=0.6)
        assert plan.feasible
        assert plan.config.budget == 4000

    def test_cap_shrinks_the_budget(self):
        roomy = plan_query(300, 10, target_precision=0.6)
        capped = plan_query(
            300, 10, target_precision=0.6,
            dollar_budget=roomy.predicted_dollars / 3,
        )
        assert capped.config.budget <= roomy.config.budget

    def test_impossible_cap_reported_infeasible(self):
        plan = plan_query(500, 10, target_precision=0.6, dollar_budget=0.05)
        assert not plan.feasible
        assert "INFEASIBLE" in plan.summary()
        assert plan.predicted_dollars > 0.05

    def test_prediction_scales_with_n(self):
        small = plan_query(100, 5, target_precision=0.5)
        large = plan_query(1000, 5, target_precision=0.5)
        assert large.predicted_microtasks > small.predicted_microtasks

    def test_noisier_crowd_costs_more(self):
        quiet = plan_query(200, 10, target_precision=0.5, noise_sigma=0.5)
        loud = plan_query(200, 10, target_precision=0.5, noise_sigma=3.0)
        assert loud.predicted_microtasks > quiet.predicted_microtasks

    def test_overhead_factor_applied(self):
        plan = plan_query(100, 5, target_precision=0.5)
        # The rationale must disclose the floor-times-overhead construction.
        assert str(SPR_OVERHEAD_FACTOR) in plan.rationale


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ConfigError):
            plan_query(10, 10)

    def test_bad_target(self):
        with pytest.raises(ConfigError):
            plan_query(100, 5, target_precision=0.0)

    def test_bad_instance_prior(self):
        with pytest.raises(ConfigError):
            plan_query(100, 5, score_spread=0.0)


class TestEndToEnd:
    def test_plan_is_roughly_honest(self):
        """Running SPR under the recommended config should land within a
        small factor of the predicted microtasks."""
        from repro.config import SPRConfig
        from repro.core.spr import spr_topk
        from repro.crowd.oracle import LatentScoreOracle
        from repro.crowd.session import CrowdSession
        from repro.crowd.workers import GaussianNoise
        from repro.rng import make_rng

        plan = plan_query(
            80, 5, target_precision=0.6, score_spread=2.0, noise_sigma=1.0,
            seed=1,
        )
        rng = make_rng(1)
        scores = rng.normal(0.0, 2.0, size=80)
        oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
        costs = []
        for seed in range(3):
            session = CrowdSession(oracle, plan.config, seed=seed)
            spr_topk(
                session, list(range(80)), 5, SPRConfig(comparison=plan.config)
            )
            costs.append(session.total_cost)
        measured = sum(costs) / len(costs)
        assert 0.2 < measured / plan.predicted_microtasks < 3.0
