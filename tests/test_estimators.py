"""Sequential testers: stopping rules, scan/streaming equivalence, coverage."""

import math

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.estimators import (
    HoeffdingTester,
    MomentState,
    SteinTester,
    StudentTester,
    make_tester,
)
from repro.stats.tdist import t_quantile


class TestMomentState:
    def test_push_updates_moments(self):
        state = MomentState()
        for v in (1.0, 2.0, 3.0):
            state.push(v)
        assert state.n == 3
        assert state.mean == pytest.approx(2.0)
        assert state.variance == pytest.approx(1.0)
        assert state.std == pytest.approx(1.0)

    def test_push_many_equals_pushes(self, rng):
        values = rng.normal(size=50)
        a, b = MomentState(), MomentState()
        a.push_many(values)
        for v in values:
            b.push(v)
        assert a.n == b.n
        assert a.mean == pytest.approx(b.mean)
        assert a.variance == pytest.approx(b.variance)

    def test_empty_state_nan(self):
        state = MomentState()
        assert math.isnan(state.mean)
        assert math.isnan(state.variance)

    def test_single_sample_variance_nan(self):
        state = MomentState()
        state.push(1.0)
        assert math.isnan(state.variance)


class TestStudentTester:
    def test_decides_after_min_workload(self):
        tester = StudentTester(alpha=0.05, min_workload=5)
        for _ in range(4):
            tester.push(1.0)
        tester.push(1.01)
        assert tester.decision() == 1

    def test_no_decision_before_min_workload(self):
        tester = StudentTester(alpha=0.05, min_workload=10)
        for v in (1.0, 1.1, 0.9):
            tester.push(v)
        assert tester.decision() is None

    def test_negative_mean_decides_right(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(np.array([-1.0, -1.05, -0.95, -1.0]))
        assert tester.decision() == -1

    def test_interval_matches_textbook_formula(self):
        values = np.array([0.8, 1.2, 1.0, 0.9, 1.1])
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(values)
        lo, hi = tester.interval()
        mean = values.mean()
        margin = t_quantile(0.05, 4) * values.std(ddof=1) / math.sqrt(5)
        assert lo == pytest.approx(mean - margin)
        assert hi == pytest.approx(mean + margin)

    def test_undecided_when_interval_straddles_zero(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(np.array([1.0, -1.0, 0.5, -0.5]))
        assert tester.decision() is None

    def test_scan_equals_streaming(self, rng):
        values = rng.normal(0.4, 1.0, size=400)
        scanner = StudentTester(alpha=0.05, min_workload=30)
        consumed, decision = scanner.scan(values)

        streamer = StudentTester(alpha=0.05, min_workload=30)
        stream_decision = None
        stream_consumed = 0
        for v in values:
            streamer.push(v)
            stream_consumed += 1
            stream_decision = streamer.decision()
            if stream_decision is not None:
                break
        assert consumed == stream_consumed
        assert decision == stream_decision
        assert scanner.state.n == streamer.state.n
        assert scanner.state.mean == pytest.approx(streamer.state.mean)

    def test_scan_consumes_all_when_undecided(self, rng):
        values = rng.normal(0.0, 1.0, size=20)
        tester = StudentTester(alpha=0.01, min_workload=30)
        consumed, decision = tester.scan(values)
        assert consumed == 20
        assert decision is None

    def test_scan_empty_input(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        consumed, decision = tester.scan(np.array([]))
        assert consumed == 0
        assert decision is None

    def test_zero_variance_decides_immediately(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(np.array([2.0, 2.0]))
        assert tester.decision() == 1

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            StudentTester(alpha=0.0, min_workload=2)
        with pytest.raises(ValueError):
            StudentTester(alpha=0.05, min_workload=1)

    def test_reset_clears_state(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(np.array([1.0, 2.0]))
        tester.reset()
        assert tester.n == 0


class TestSteinTester:
    def test_decides_clear_signal(self, rng):
        tester = SteinTester(alpha=0.05, min_workload=2)
        consumed, decision = tester.scan(rng.normal(2.0, 0.5, size=200))
        assert decision == 1
        assert consumed < 200

    def test_stopping_rule_matches_two_stage_algorithm5(self):
        # At the stopping point, S²_stage · L⁻² · t²_{α/2, I-1} <= w must
        # hold — with the variance and df frozen at the first stage.
        rng = np.random.default_rng(5)
        tester = SteinTester(alpha=0.05, min_workload=10, epsilon=1e-9)
        consumed, decision = tester.scan(rng.normal(1.0, 1.0, size=1000))
        assert decision == 1
        state = tester.state
        half_width = abs(state.mean) - 1e-9
        required = (
            tester.stage_variance
            * t_quantile(0.05, tester.stage_df) ** 2
            / half_width**2
        )
        assert required <= state.n

    def test_stage_variance_frozen_at_cold_start(self, rng):
        tester = SteinTester(alpha=0.05, min_workload=10)
        first_stage = rng.normal(0.0, 1.0, size=10)
        consumed, _ = tester.scan(first_stage)
        assert consumed == 10
        frozen = tester.stage_variance
        assert frozen == pytest.approx(np.var(first_stage, ddof=1))
        tester.scan(rng.normal(0.0, 5.0, size=50))  # wilder second stage
        assert tester.stage_variance == frozen  # still the stage-1 estimate

    def test_differs_from_student_on_some_streams(self):
        # The two-stage freeze is what distinguishes Stein from Student
        # (the literal Algorithm-5 reading coincides with Algorithm 1).
        differing = 0
        for seed in range(60):
            values = np.random.default_rng(seed).normal(0.35, 1.0, size=3000)
            s = StudentTester(alpha=0.05, min_workload=30)
            cs, _ = s.scan(values)
            t = SteinTester(alpha=0.05, min_workload=30)
            ct, _ = t.scan(values)
            if cs != ct:
                differing += 1
        assert differing > 0

    def test_negative_signal(self, rng):
        tester = SteinTester(alpha=0.05, min_workload=2)
        _, decision = tester.scan(rng.normal(-1.5, 0.5, size=500))
        assert decision == -1

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            SteinTester(alpha=0.05, min_workload=2, epsilon=0.0)

    def test_comparable_workload_to_student(self, rng):
        # Table 3 / Figure 17: Stein and Student are analogous.
        student_w, stein_w = [], []
        for seed in range(20):
            values = np.random.default_rng(seed).normal(0.5, 1.0, size=2000)
            s = StudentTester(alpha=0.05, min_workload=30)
            c1, d1 = s.scan(values)
            t = SteinTester(alpha=0.05, min_workload=30)
            c2, d2 = t.scan(values)
            assert d1 == d2 == 1
            student_w.append(c1)
            stein_w.append(c2)
        ratio = np.mean(stein_w) / np.mean(student_w)
        assert 0.5 < ratio < 2.0


class TestHoeffdingTester:
    def test_binary_workload_matches_equation3(self):
        # A perfectly one-sided ±1 stream decides once the half-width
        # drops below 1: n = ceil(2 ln(2/alpha)).
        alpha = 0.05
        tester = HoeffdingTester(alpha=alpha, min_workload=2, value_range=2.0)
        consumed, decision = tester.scan(np.ones(100))
        assert decision == 1
        assert consumed == math.ceil(2.0 * math.log(2.0 / alpha))

    def test_undecided_on_balanced_votes(self):
        tester = HoeffdingTester(alpha=0.05, min_workload=2, value_range=2.0)
        votes = np.tile([1.0, -1.0], 50)
        consumed, decision = tester.scan(votes)
        assert decision is None
        assert consumed == 100

    def test_needs_more_samples_than_student(self, rng):
        values = rng.normal(0.5, 1.0, size=5000)
        binary = np.sign(values)
        student = StudentTester(alpha=0.05, min_workload=30)
        c_student, _ = student.scan(values)
        hoeffding = HoeffdingTester(alpha=0.05, min_workload=30, value_range=2.0)
        c_hoeffding, d = hoeffding.scan(binary)
        assert d in (1, None)
        assert c_hoeffding > c_student

    def test_value_range_validated(self):
        with pytest.raises(ValueError):
            HoeffdingTester(alpha=0.05, min_workload=2, value_range=0.0)


class TestMakeTester:
    def test_builds_each_kind(self):
        assert isinstance(
            make_tester(ComparisonConfig(estimator="student")), StudentTester
        )
        assert isinstance(
            make_tester(ComparisonConfig(estimator="stein")), SteinTester
        )
        tester = make_tester(
            ComparisonConfig(estimator="hoeffding"), value_range=2.0
        )
        assert isinstance(tester, HoeffdingTester)
        assert tester.value_range == 2.0

    def test_hoeffding_requires_range(self):
        with pytest.raises(ValueError):
            make_tester(ComparisonConfig(estimator="hoeffding"))

    def test_inherits_config(self):
        config = ComparisonConfig(confidence=0.9, min_workload=5)
        tester = make_tester(config)
        assert tester.alpha == pytest.approx(0.1)
        assert tester.min_workload == 5


class TestCoverage:
    """Statistical guarantees: the confidence level is actually honoured."""

    @pytest.mark.parametrize("tester_cls", [StudentTester, SteinTester])
    def test_false_verdict_rate_below_alpha(self, tester_cls):
        # A pair with a true positive mean: verdicts of -1 are errors and
        # must occur with probability < alpha (here: far less, since most
        # runs simply take longer rather than erring).
        alpha = 0.10
        errors = 0
        trials = 300
        for seed in range(trials):
            values = np.random.default_rng(seed).normal(0.3, 1.0, size=3000)
            tester = tester_cls(alpha=alpha, min_workload=30)
            _, decision = tester.scan(values)
            if decision == -1:
                errors += 1
        assert errors / trials < alpha
