"""The SPR framework: selection, partitioning, ranking, and the driver."""

import numpy as np
import pytest

from repro.config import SPRConfig
from repro.core.spr import (
    expected_precision_lower_bound,
    partition,
    reference_sort,
    select_reference,
    spr_topk,
)
from repro.core.spr.rank import pairwise_win_probability, thurstone_order
from repro.errors import AlgorithmError
from tests.conftest import make_items, make_latent_session

# Well-separated 30-item universe: every comparison resolves quickly and
# SPR's answers are exact, making structural assertions deterministic.
SCORES = [float(i) for i in range(30)]


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.3, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


class TestSelectReference:
    def test_reference_is_a_member(self):
        session = clean_session()
        result = select_reference(session, list(range(30)), 5)
        assert result.reference in range(30)

    def test_plan_within_budget(self):
        session = clean_session()
        result = select_reference(session, list(range(30)), 5)
        assert result.plan.comparisons <= 30
        assert len(result.maxima) == result.plan.m

    def test_costs_recorded(self):
        session = clean_session()
        result = select_reference(session, list(range(30)), 5)
        assert result.cost == session.total_cost
        assert result.cost > 0

    def test_reference_lands_near_sweet_spot_on_average(self):
        # Statistical property over many seeds: the reference's true rank
        # is concentrated far from the uniform-guess mean of N/2.
        ranks = []
        for seed in range(25):
            session = clean_session(seed=seed)
            result = select_reference(session, list(range(30)), 5, sweet_spot=2.0)
            ranks.append(30 - result.reference)  # score i has rank 30 - i
        assert np.mean(ranks) < 15
        assert min(ranks) >= 1

    def test_validates_inputs(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            select_reference(session, [1], 1)
        with pytest.raises(AlgorithmError):
            select_reference(session, list(range(10)), 10)


class TestPartition:
    def test_groups_are_exact_for_clean_oracle(self):
        session = clean_session()
        result = partition(session, list(range(30)), 5, reference=20)
        # Items 21..29 strictly beat item 20; the rest lose.
        assert sorted(result.winners) == list(range(21, 30))
        assert result.ties == ()
        assert sorted(result.losers) == list(range(21))
        assert result.reference == 20

    def test_partition_is_exhaustive(self):
        session = clean_session(sigma=2.0, budget=60)
        result = partition(session, list(range(30)), 5, reference=15)
        everything = sorted(result.winners + result.ties + result.losers)
        assert everything == list(range(30))

    def test_reference_added_to_winners_when_short(self):
        session = clean_session()
        result = partition(session, list(range(30)), 5, reference=28)
        # Only item 29 beats 28; Line 13 adds the reference back.
        assert 28 in result.winners
        assert len(result.winners) == 2

    def test_reference_among_losers_when_enough_winners(self):
        session = clean_session()
        result = partition(session, list(range(30)), 3, reference=20)
        assert 20 in result.losers or result.reference != 20

    def test_reference_change_improves_reference(self):
        # Noisy enough that near-reference pairs outlive the first rounds,
        # leaving undecided work for the change to benefit (Lines 9-12 only
        # fire while something is still racing).
        session = clean_session(sigma=4.0, min_workload=10, budget=3000)
        result = partition(
            session, list(range(30)), 3, reference=10, max_reference_changes=4
        )
        assert result.reference_changes >= 1
        # the final reference must be better than the initial one
        assert result.reference > 10

    def test_no_changes_when_disabled(self):
        session = clean_session()
        result = partition(
            session, list(range(30)), 3, reference=10, max_reference_changes=0
        )
        assert result.reference_changes == 0
        assert result.reference == 10

    def test_changes_bounded(self):
        session = clean_session()
        result = partition(
            session, list(range(30)), 3, reference=0, max_reference_changes=2
        )
        assert result.reference_changes <= 2

    def test_validates_inputs(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            partition(session, [0, 1], 1, reference=5)
        with pytest.raises(AlgorithmError):
            partition(session, [0, 1], 3, reference=0)
        with pytest.raises(AlgorithmError):
            partition(session, [0, 1], 1, reference=0, max_reference_changes=-1)


class TestRank:
    def test_thurstone_order_uses_reference_bags(self):
        session = clean_session()
        partition(session, list(range(30)), 5, reference=20)
        order = thurstone_order(session, [25, 22, 28, 20], 20)
        assert order == [28, 25, 22, 20]

    def test_reference_sort_exact(self):
        session = clean_session()
        result = partition(session, list(range(30)), 5, reference=20)
        ranked = reference_sort(session, list(result.winners), 20)
        assert ranked == sorted(result.winners, reverse=True)

    def test_reference_sort_without_reference(self):
        session = clean_session()
        ranked = reference_sort(session, [3, 9, 6, 0])
        assert ranked == [9, 6, 3, 0]

    def test_win_probability_orders_pairs(self):
        session = clean_session()
        partition(session, list(range(30)), 5, reference=20)
        p_up = pairwise_win_probability(session, 28, 22, 20)
        p_down = pairwise_win_probability(session, 22, 28, 20)
        assert p_up > 0.9
        assert p_up + p_down == pytest.approx(1.0)

    def test_win_probability_against_reference_itself(self):
        session = clean_session()
        partition(session, list(range(30)), 5, reference=20)
        assert pairwise_win_probability(session, 28, 20, 20) > 0.5


class TestDriver:
    def test_exact_topk_on_clean_oracle(self):
        session = clean_session()
        result = spr_topk(session, list(range(30)), 5)
        assert list(result.topk) == [29, 28, 27, 26, 25]

    def test_small_input_sorts_directly(self):
        session = clean_session()
        result = spr_topk(session, [4, 1, 3], 2)
        assert list(result.topk) == [4, 3]
        assert result.selection is None
        assert result.partition_result is None

    def test_k_equals_n_returns_full_order(self):
        session = clean_session()
        result = spr_topk(session, [0, 5, 2, 9], 4)
        assert list(result.topk) == [9, 5, 2, 0]

    def test_cost_matches_session(self):
        session = clean_session()
        result = spr_topk(session, list(range(30)), 5)
        assert result.cost == session.total_cost
        assert result.rounds == session.total_rounds

    def test_duplicate_ids_rejected(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            spr_topk(session, [1, 1, 2], 1)

    def test_invalid_k_rejected(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            spr_topk(session, [1, 2], 3)

    def test_diagnostics_populated(self):
        session = clean_session()
        result = spr_topk(session, list(range(30)), 5)
        assert result.selection is not None
        assert result.partition_result is not None
        sizes = (
            len(result.partition_result.winners)
            + len(result.partition_result.ties)
            + len(result.partition_result.losers)
        )
        assert sizes == 30

    def test_recursion_path(self):
        # Force recursion: a reference so good that winners+ties < k.
        session = clean_session()
        config = SPRConfig(
            comparison=session.config,
            max_reference_changes=0,
            min_items_for_selection=2,
        )
        part = partition(session, list(range(30)), 8, reference=28,
                         max_reference_changes=0)
        assert len(part.winners) + len(part.ties) < 8  # precondition

        fresh = clean_session(seed=1)
        # monkey-path-free approach: run the driver on a tiny sweet spot so
        # selection may pick a too-good reference; instead assert the
        # recursive branch produces the right answer via the public API.
        result = spr_topk(fresh, list(range(30)), 8, config)
        assert list(result.topk) == list(range(29, 21, -1))

    def test_noisy_run_still_accurate(self):
        session = make_latent_session(
            np.linspace(0, 10, 40), sigma=1.5, seed=5,
            min_workload=10, budget=500, batch_size=10,
        )
        result = spr_topk(session, list(range(40)), 5)
        truth = set(range(35, 40))
        assert len(truth & set(result.topk)) >= 4


class TestPrecisionBound:
    def test_formula(self):
        assert expected_precision_lower_bound(0.02, 1.5) == pytest.approx(
            0.98 / 1.5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_precision_lower_bound(0.0, 1.5)
        with pytest.raises(ValueError):
            expected_precision_lower_bound(0.05, 1.0)

    def test_empirical_precision_beats_bound(self):
        # §5.4: the bound is loose; clean runs should exceed it easily.
        bound = expected_precision_lower_bound(0.05, 1.5)
        hits = 0
        for seed in range(10):
            session = clean_session(seed=seed)
            result = spr_topk(session, list(range(30)), 5)
            hits += len(set(result.topk) & set(range(25, 30))) / 5
        assert hits / 10 >= bound
