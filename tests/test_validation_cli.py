"""End-to-end tests of ``crowd-topk validate``.

These drive :func:`repro.cli.main` exactly as CI's nightly leg does:
exit codes gate the job, ``--report`` is the machine-readable artifact,
``--telemetry`` the JSONL stream, and ``--jobs`` must not change any of
them.  Guarantee runs here use tiny replication counts — enough to prove
plumbing, deliberately below the 200-replication acceptance run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.validation.golden import default_golden_cases

GOLDEN_DIR = str(Path(__file__).parent / "golden")


def _validate(*extra: str) -> int:
    return main(["validate", *extra])


class TestExitCodes:
    @pytest.mark.faultfree  # golden pins record fault-free traces
    def test_golden_suite_passes_against_checked_in_pins(self, capsys):
        assert _validate("--suite", "golden", "--golden-dir", GOLDEN_DIR) == 0
        out = capsys.readouterr().out
        assert "validate: PASS" in out

    def test_golden_suite_fails_without_pins(self, tmp_path, capsys):
        code = _validate("--suite", "golden", "--golden-dir", str(tmp_path))
        assert code == 1
        out = capsys.readouterr().out
        assert "validate: FAIL" in out and "--update-golden" in out

    def test_update_golden_repins_and_passes(self, tmp_path, capsys):
        target = tmp_path / "pins"
        code = _validate(
            "--suite", "golden", "--golden-dir", str(target), "--update-golden"
        )
        assert code == 0
        for name in default_golden_cases():
            assert (target / f"{name}.json").exists()
        assert "re-pinned" in capsys.readouterr().out
        assert _validate("--suite", "golden", "--golden-dir", str(target)) == 0

    def test_guarantee_breach_exits_nonzero(self, capsys):
        # 5 replications cannot certify α=0.05: Wilson UB(0, 5) ≈ 0.43.
        code = _validate(
            "--suite", "guarantees", "--replications", "5", "--alpha", "0.05"
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_invariants_suite_passes(self, capsys):
        assert _validate("--suite", "invariants") == 0
        assert "invariants:" in capsys.readouterr().out

    def test_unwritable_telemetry_path_fails_before_running(self, tmp_path, capsys):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("file, not directory")
        code = _validate(
            "--suite", "golden", "--golden-dir", GOLDEN_DIR,
            "--telemetry", str(blocked / "out.jsonl"),
        )
        assert code == 1
        assert "cannot write telemetry" in capsys.readouterr().err


class TestReportArtifact:
    def _run(self, tmp_path, *extra: str) -> dict:
        report = tmp_path / "report.json"
        report.parent.mkdir(parents=True, exist_ok=True)
        code = _validate(
            "--suite", "guarantees", "--replications", "6",
            "--alpha", "0.1", "--seed", "7", "--report", str(report), *extra,
        )
        payload = json.loads(report.read_text())
        assert code == (0 if payload["passed"] else 1)
        return payload

    def test_report_schema(self, tmp_path):
        payload = self._run(tmp_path)
        suite = payload["suites"]["guarantees"]
        assert suite["replications"] == 6 and suite["seed"] == 7
        names = {c["name"] for c in suite["checks"]}
        assert names == {
            "comparison", "partition", "spr_recall",
            "bdp_recall", "pac_comparison",
        }
        for check in suite["checks"]:
            assert check["alpha"] == 0.1
            assert 0.0 <= check["wilson_low"] <= check["wilson_high"] <= 1.0

    def test_jobs_do_not_change_the_report(self, tmp_path):
        serial = self._run(tmp_path / "serial", "--jobs", "1")
        pooled = self._run(tmp_path / "pooled", "--jobs", "2")
        assert serial == pooled

    @pytest.mark.faultfree  # runs the golden suite against fault-free pins
    def test_all_suites_appear_in_combined_report(self, tmp_path):
        report = tmp_path / "report.json"
        code = _validate(
            "--suite", "all", "--replications", "40", "--golden-dir", GOLDEN_DIR,
            "--report", str(report),
        )
        payload = json.loads(report.read_text())
        assert set(payload["suites"]) == {"guarantees", "invariants", "golden"}
        assert code == (0 if payload["passed"] else 1)
        assert payload["suites"]["invariants"]["passed"]
        assert payload["suites"]["golden"]["passed"]


class TestTelemetryStream:
    def test_jsonl_schema(self, tmp_path):
        stream = tmp_path / "telemetry.jsonl"
        code = _validate(
            "--suite", "guarantees", "--replications", "4",
            "--alpha", "0.1", "--telemetry", str(stream),
        )
        assert code in (0, 1)  # tiny run may breach; the stream must exist
        lines = [json.loads(l) for l in stream.read_text().splitlines()]
        assert lines, "telemetry stream is empty"
        # The final line is the full snapshot; metric lines precede it.
        snapshot = lines[-1]
        assert snapshot["type"] == "snapshot"
        assert {"counters", "gauges", "histograms", "spans"} <= set(snapshot)
        counter_lines = [l for l in lines if l.get("type") == "counter"]
        names = {l["name"] for l in counter_lines}
        assert "validation_replications_total" in names
        for line in counter_lines:
            assert set(line) >= {"name", "labels", "value"}
        rep = next(
            l for l in counter_lines
            if l["name"] == "validation_replications_total"
        )
        assert rep["labels"]["check"] in {
            "comparison", "partition", "spr_recall",
            "bdp_recall", "pac_comparison",
        }
        span_names = {s["name"] for s in snapshot["spans"]}
        assert "validation.guarantees" in span_names
