"""Boundary-value tests across the core surfaces."""

import numpy as np
import pytest

from repro.config import ComparisonConfig, UNBOUNDED_BUDGET_CAP
from repro.core.estimators import HoeffdingTester, SteinTester, StudentTester
from repro.core.outcomes import Outcome
from repro.core.spr import spr_topk
from repro.crowd.pool import RacingPool
from tests.conftest import make_latent_session


class TestBudgetBoundaries:
    def test_budget_equals_min_workload(self):
        # The tightest legal configuration: exactly one decision point.
        session = make_latent_session(
            [0.0, 5.0], sigma=0.5, budget=10, min_workload=10
        )
        record = session.compare(1, 0)
        assert record.workload == 10
        assert record.outcome is Outcome.LEFT

    def test_budget_equals_min_workload_tie(self):
        session = make_latent_session(
            [0.0, 0.01], sigma=3.0, budget=10, min_workload=10
        )
        record = session.compare(1, 0)
        assert record.workload == 10
        assert record.outcome is Outcome.TIE

    def test_unbounded_budget_uses_cap(self):
        config = ComparisonConfig(budget=None)
        assert config.effective_budget == UNBOUNDED_BUDGET_CAP

    def test_pool_step_larger_than_remaining_budget(self):
        session = make_latent_session(
            [0.0, 0.01], sigma=3.0, budget=15, min_workload=10, batch_size=10
        )
        pool = RacingPool(session, [(1, 0)])
        resolved = pool.run_to_completion(step=40)  # step >> budget
        assert resolved == [(0, 0)]
        assert int(pool.n[0]) == 15  # never exceeds the budget


class TestTinyUniverses:
    def test_spr_two_items(self):
        session = make_latent_session([0.0, 4.0], sigma=0.5, min_workload=4)
        result = spr_topk(session, [0, 1], 1)
        assert list(result.topk) == [1]

    def test_spr_k_equals_n_minus_one(self):
        session = make_latent_session(
            [float(i) for i in range(9)], sigma=0.3, min_workload=4
        )
        result = spr_topk(session, list(range(9)), 8)
        assert list(result.topk) == list(range(8, 0, -1))

    def test_spr_exactly_at_selection_threshold(self):
        # min_items_for_selection = 8 by default: N=8 runs the full
        # pipeline, N=7 sorts directly.
        for n in (7, 8):
            session = make_latent_session(
                [float(i) for i in range(n)], sigma=0.3, min_workload=4
            )
            result = spr_topk(session, list(range(n)), 2)
            assert list(result.topk) == [n - 1, n - 2]


class TestEstimatorBoundaries:
    def test_student_two_identical_samples(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        tester.push_many(np.array([1.0, 1.0]))
        assert tester.decision() == 1

    def test_student_alternating_never_decides(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        consumed, decision = tester.scan(np.tile([1.0, -1.0], 100))
        assert decision is None

    def test_stein_stage_equals_stream_length(self):
        tester = SteinTester(alpha=0.05, min_workload=10)
        consumed, decision = tester.scan(np.full(10, 2.0))
        assert consumed == 10
        assert decision == 1  # zero stage variance, clear mean

    def test_hoeffding_extreme_alpha(self):
        tester = HoeffdingTester(alpha=0.5, min_workload=2, value_range=2.0)
        consumed, decision = tester.scan(np.ones(20))
        assert decision == 1
        # n = ceil(2 ln 4) = 3, but the cold-start gate holds until 2...
        assert consumed <= 5

    def test_scan_single_value(self):
        tester = StudentTester(alpha=0.05, min_workload=2)
        consumed, decision = tester.scan(np.array([3.0]))
        assert consumed == 1
        assert decision is None


class TestSessionBoundaries:
    @pytest.mark.faultfree  # dropped tasks add rounds without adding cost
    def test_batch_size_one(self):
        session = make_latent_session(
            [0.0, 2.0], sigma=0.5, batch_size=1, min_workload=5
        )
        record = session.compare(1, 0)
        assert record.rounds == record.cost  # one task per round

    def test_huge_batch_single_round(self):
        session = make_latent_session(
            [0.0, 2.0], sigma=0.5, batch_size=10_000, min_workload=5
        )
        record = session.compare(1, 0)
        assert record.rounds == 1

    def test_compare_many_empty(self):
        session = make_latent_session([0.0, 1.0])
        assert session.compare_many([]) == []
        assert session.total_rounds == 0
