"""Extensions: interval partial ranking, prior-guided SPR, economics."""

import numpy as np
import pytest

from repro.core.spr import partition
from repro.errors import AlgorithmError
from repro.extensions import (
    TASK_CATEGORIES,
    CostBreakdown,
    IntervalEstimate,
    PartialOrder,
    dollars_for,
    interval_partial_order,
    prior_reference,
    session_bill,
    spr_topk_with_prior,
)
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(30)]


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.5, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


class TestIntervalEstimate:
    def test_separation(self):
        a = IntervalEstimate(item=0, lower=1.0, upper=2.0, n=10)
        b = IntervalEstimate(item=1, lower=2.5, upper=3.0, n=10)
        c = IntervalEstimate(item=2, lower=1.5, upper=2.7, n=10)
        assert a.separated_from(b)
        assert not a.separated_from(c)
        assert a.width == pytest.approx(1.0)
        assert b.midpoint == pytest.approx(2.75)


class TestPartialOrder:
    def _order(self):
        return PartialOrder(
            [
                IntervalEstimate(item=1, lower=5.0, upper=6.0, n=10),
                IntervalEstimate(item=2, lower=3.0, upper=4.0, n=10),
                IntervalEstimate(item=3, lower=3.5, upper=4.5, n=10),
                IntervalEstimate(item=4, lower=0.0, upper=1.0, n=10),
            ]
        )

    def test_dominates(self):
        order = self._order()
        assert order.dominates(1, 2)
        assert order.dominates(2, 4)
        assert not order.dominates(2, 3)
        assert not order.dominates(3, 2)

    def test_unresolved_pairs(self):
        assert self._order().unresolved_pairs() == [(2, 3)]

    def test_layers(self):
        layers = self._order().layers()
        assert layers[0] == [1]
        assert sorted(layers[1]) == [2, 3]
        assert layers[2] == [4]

    def test_is_total(self):
        assert not self._order().is_total()
        total = PartialOrder(
            [
                IntervalEstimate(item=1, lower=5.0, upper=6.0, n=5),
                IntervalEstimate(item=2, lower=1.0, upper=2.0, n=5),
            ]
        )
        assert total.is_total()

    def test_best_effort_ranking(self):
        ranking = self._order().best_effort_ranking()
        assert ranking[0] == 1
        assert ranking[-1] == 4

    def test_duplicates_rejected(self):
        with pytest.raises(AlgorithmError):
            PartialOrder(
                [
                    IntervalEstimate(item=1, lower=0, upper=1, n=2),
                    IntervalEstimate(item=1, lower=0, upper=1, n=2),
                ]
            )


class TestIntervalPartialOrder:
    def test_orders_well_separated_candidates(self):
        session = clean_session()
        part = partition(session, list(range(30)), 5, reference=20)
        candidates = [29, 27, 25, 23]
        order = interval_partial_order(
            session, candidates, 20, extra_budget=300
        )
        assert order.dominates(29, 25)
        assert order.best_effort_ranking()[0] == 29

    def test_extra_budget_is_charged(self):
        session = clean_session()
        before = session.total_cost
        interval_partial_order(session, [25, 28], 20, extra_budget=100)
        assert session.total_cost > before

    def test_target_halfwidth_stops_early(self):
        loose = clean_session(seed=1)
        interval_partial_order(
            loose, [25, 28], 20, extra_budget=500, target_halfwidth=1.0
        )
        tight = clean_session(seed=1)
        interval_partial_order(
            tight, [25, 28], 20, extra_budget=500, target_halfwidth=0.05
        )
        assert loose.total_cost < tight.total_cost

    def test_close_items_stay_unresolved(self):
        session = make_latent_session(
            [0.0, 5.0, 5.02, 9.0], sigma=2.0,
            min_workload=5, budget=200, batch_size=10,
        )
        order = interval_partial_order(session, [1, 2], 3, extra_budget=100)
        assert order.unresolved_pairs() == [(1, 2)]

    def test_reference_cannot_be_candidate(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            interval_partial_order(session, [20, 25], 20)

    def test_validates_knobs(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            interval_partial_order(session, [25], 20, extra_budget=-1)
        with pytest.raises(AlgorithmError):
            interval_partial_order(session, [25], 20, target_halfwidth=0.0)


class TestPriorReference:
    def test_perfect_prior_hits_sweet_spot(self):
        priors = {i: float(i) for i in range(30)}
        reference = prior_reference(list(range(30)), 5, priors, sweet_spot=1.6)
        # sweet spot ranks {5..8}; the midpoint rank 6 is item 24.
        assert 30 - reference in range(5, 9)

    def test_missing_prior_rejected(self):
        with pytest.raises(AlgorithmError):
            prior_reference([0, 1, 2], 1, {0: 1.0, 1: 2.0})

    def test_validates_query(self):
        priors = {i: float(i) for i in range(5)}
        with pytest.raises(AlgorithmError):
            prior_reference(list(range(5)), 0, priors)
        with pytest.raises(AlgorithmError):
            prior_reference(list(range(5)), 2, priors, sweet_spot=1.0)

    def test_spr_with_prior_exact(self):
        session = clean_session()
        priors = {i: float(i) + session.rng.normal(0, 0.5) for i in range(30)}
        result = spr_topk_with_prior(session, list(range(30)), 5, priors)
        assert list(result.topk) == [29, 28, 27, 26, 25]
        assert result.selection is None  # no sampling phase was paid for

    def test_prior_saves_selection_cost(self):
        from repro.core.spr import spr_topk

        priors = {i: float(i) for i in range(30)}
        with_prior = clean_session(seed=3)
        prior_cost = spr_topk_with_prior(
            with_prior, list(range(30)), 5, priors
        ).cost
        plain = clean_session(seed=3)
        plain_cost = spr_topk(plain, list(range(30)), 5).cost
        assert prior_cost < plain_cost

    def test_bad_prior_costs_money_not_correctness(self):
        # An adversarial prior (reversed) still returns the right answer.
        priors = {i: -float(i) for i in range(30)}
        session = clean_session(seed=4)
        result = spr_topk_with_prior(session, list(range(30)), 5, priors)
        assert set(result.topk) == {29, 28, 27, 26, 25}


class TestEconomics:
    def test_dollars_at_paper_unit_cost(self):
        # the paper's interactive run: 10,560 tasks ≈ US$10.56
        assert dollars_for(10_560) == pytest.approx(10.56)

    def test_dollars_custom_rate(self):
        assert dollars_for(100, unit_cost_usd=0.05) == pytest.approx(5.0)

    def test_dollars_validation(self):
        with pytest.raises(ValueError):
            dollars_for(-1)
        with pytest.raises(ValueError):
            dollars_for(1, unit_cost_usd=-0.1)

    def test_table8_categories(self):
        assert set(TASK_CATEGORIES) == {"micro", "macro", "simple", "complex"}
        assert "pairwise preference judgment" in TASK_CATEGORIES["micro"].examples

    def test_session_bill(self):
        session = clean_session()
        session.compare(5, 0)
        session.compare(9, 1)
        bill = session_bill(session)
        assert isinstance(bill, CostBreakdown)
        assert bill.microtasks == session.total_cost
        assert bill.comparisons == 2
        assert bill.dollars == pytest.approx(bill.microtasks * 0.001)
        assert bill.mean_workload == pytest.approx(bill.microtasks / 2)
        assert "US$" in bill.summary()

    def test_empty_session_bill(self):
        bill = session_bill(clean_session())
        assert bill.mean_workload == 0.0
        assert bill.dollars == 0.0
