"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import inspect
import pathlib

import pytest

import repro

#: Pinned snapshot of every name ``repro`` exports, sorted.  The top-level
#: package is the contract downstream code programs against; exports must
#: change deliberately, not as a side effect of refactors.  If the snapshot
#: test fails you either (a) removed or renamed a public name — a breaking
#: change needing a deprecation path — or (b) added one, in which case
#: update this list *and* document the newcomer.
PUBLIC_API = [
    "ALGORITHMS",
    "AdmissionError",
    "AlgorithmError",
    "BDPRanker",
    "BinaryOracle",
    "BudgetExhaustedError",
    "Comparator",
    "ComparisonConfig",
    "ComparisonRecord",
    "ConfidenceStopping",
    "ConfigError",
    "CrowdSession",
    "CrowdTopkError",
    "DATASET_NAMES",
    "DEFAULT_EXECUTION",
    "Dataset",
    "DatasetError",
    "ExecutionPolicy",
    "ExplainReport",
    "FaultInjector",
    "FaultPolicy",
    "FlightRecorder",
    "HistogramOracle",
    "ItemSet",
    "JsonlSink",
    "JudgmentCache",
    "JudgmentOracle",
    "LatentScoreOracle",
    "MetricsRegistry",
    "ObservatoryServer",
    "OracleError",
    "Outcome",
    "PACStopping",
    "PACTester",
    "PartitionResult",
    "QueryBoard",
    "QueryCancelledError",
    "QueryHandle",
    "QueryPlan",
    "QueryService",
    "QuerySpec",
    "QueryTrace",
    "RacingLattice",
    "RacingPool",
    "RecordDatabaseOracle",
    "ResiliencePolicy",
    "RetryPolicy",
    "SLAExceededError",
    "SPRConfig",
    "SPRResult",
    "SelectionResult",
    "ServiceError",
    "SharedJudgmentCache",
    "TopKOutcome",
    "UserTableOracle",
    "__version__",
    "bdp_topk",
    "cache_from_json",
    "cache_to_json",
    "crowdbt_topk",
    "default_resilience",
    "execution_policy_from_dict",
    "explain_query",
    "get_registry",
    "heapsort_topk",
    "hybrid_spr_topk",
    "hybrid_topk",
    "infimum_estimate",
    "kendall_tau",
    "load_cache",
    "load_checkpoint",
    "load_dataset",
    "ndcg_at_k",
    "parse_address",
    "partition",
    "pbr_topk",
    "plan_query",
    "quickselect_topk",
    "race_group",
    "reference_sort",
    "resume_bdp_topk",
    "resume_spr_topk",
    "run_golden_suite",
    "run_guarantee_suite",
    "run_invariant_suite",
    "run_lattice",
    "run_query",
    "save_cache",
    "save_checkpoint",
    "select_reference",
    "set_registry",
    "spec_from_document",
    "spr_topk",
    "stopping_from_document",
    "top_k_precision",
    "top_k_recall",
    "tournament_topk",
    "trace_session",
    "use_registry",
]


class TestPublicApiSnapshot:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_API

    def test_fault_tolerance_surface_is_public(self):
        # The resilience / checkpoint surface added for fault-tolerant
        # execution must stay importable from the package root.
        for name in (
            "FaultInjector",
            "FaultPolicy",
            "RetryPolicy",
            "ResiliencePolicy",
            "default_resilience",
            "save_checkpoint",
            "load_checkpoint",
            "resume_spr_topk",
            "race_group",
            "run_invariant_suite",
        ):
            assert name in repro.__all__, name

    def test_observability_surface_is_public(self):
        # The live-observatory surface: HTTP server, flight recorder,
        # query board, and the explain-report builder.
        for name in (
            "ObservatoryServer",
            "QueryBoard",
            "FlightRecorder",
            "ExplainReport",
            "explain_query",
            "parse_address",
        ):
            assert name in repro.__all__, name

    def test_bdp_surface_is_public(self):
        # The second algorithm family: the BDP ranker, its resume entry
        # point, and the PAC / confidence stopping layer it plugs into.
        for name in (
            "BDPRanker",
            "bdp_topk",
            "resume_bdp_topk",
            "PACTester",
            "ConfidenceStopping",
            "PACStopping",
            "stopping_from_document",
        ):
            assert name in repro.__all__, name

    def test_validation_entry_points_are_public(self):
        for name in (
            "run_golden_suite",
            "run_guarantee_suite",
            "run_invariant_suite",
        ):
            assert name in repro.__all__, name

    def test_service_surface_is_public(self):
        # The multi-tenant service front door: the declarative spec, the
        # service and its handles, the shared cache, the one-shot runner,
        # the execution policy, and the service error family.
        for name in (
            "QueryService",
            "QuerySpec",
            "QueryHandle",
            "SharedJudgmentCache",
            "run_query",
            "spec_from_document",
            "ExecutionPolicy",
            "ServiceError",
            "AdmissionError",
            "QueryCancelledError",
            "SLAExceededError",
        ):
            assert name in repro.__all__, name


class TestTopLevelExports:
    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_public_callables_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_classes_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_core_entry_points_present(self):
        for name in (
            "spr_topk", "CrowdSession", "ComparisonConfig", "SPRConfig",
            "load_dataset", "ndcg_at_k", "plan_query", "trace_session",
            "save_cache",
        ):
            assert name in repro.__all__, name

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        src = pathlib.Path(repro.__file__).parent
        missing = []
        for path in sorted(src.rglob("*.py")):
            text = path.read_text()
            stripped = text.lstrip()
            if not stripped:  # empty __init__ placeholders are not allowed
                missing.append(str(path))
            elif not stripped.startswith(('"""', "'''")):
                missing.append(str(path))
        assert not missing, missing


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.crowd",
            "repro.core",
            "repro.algorithms",
            "repro.datasets",
            "repro.metrics",
            "repro.stats",
            "repro.experiments",
            "repro.extensions",
            "repro.service",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"
