"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import inspect
import pathlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted_and_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_public_callables_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, undocumented

    def test_public_classes_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_core_entry_points_present(self):
        for name in (
            "spr_topk", "CrowdSession", "ComparisonConfig", "SPRConfig",
            "load_dataset", "ndcg_at_k", "plan_query", "trace_session",
            "save_cache",
        ):
            assert name in repro.__all__, name

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        src = pathlib.Path(repro.__file__).parent
        missing = []
        for path in sorted(src.rglob("*.py")):
            text = path.read_text()
            stripped = text.lstrip()
            if not stripped:  # empty __init__ placeholders are not allowed
                missing.append(str(path))
            elif not stripped.startswith(('"""', "'''")):
                missing.append(str(path))
        assert not missing, missing


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.crowd",
            "repro.core",
            "repro.algorithms",
            "repro.datasets",
            "repro.metrics",
            "repro.stats",
            "repro.experiments",
            "repro.extensions",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"
