"""Racing lattice: fused multi-lane rounds are bit-identical to serial.

The lattice's whole contract is that fusing R runs into one padded
kernel pass per round changes *nothing* observable per lane: same
judgments, same verdicts, same costs, same telemetry.  These tests pin
that contract at every layer — direct ``RacingLattice`` use, the
``run_lattice`` chunking helper, the experiment harness's
``engine="lattice"`` path, engine resolution precedence, query-board
registration, lane failure isolation, and checkpoint/kill/resume of a
query that died mid-lattice.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.config import ComparisonConfig, ResiliencePolicy
from repro.core.spr import resume_spr_topk, spr_topk
from repro.crowd.lattice import (
    LATTICE_MAX_LANES,
    RacingLattice,
    current_lattice,
    run_lattice,
)
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import BudgetExhaustedError, ConfigError
from repro.experiments import (
    ExperimentParams,
    resolve_engine,
    run_methods,
    set_default_engine,
    use_engine,
)
from repro.experiments.parallel import ENGINE_ENV
from repro.telemetry import MetricsRegistry, get_query_board, use_registry

N_ITEMS, K = 16, 4

#: Counters that must be byte-identical between serial and fused runs.
PARITY_COUNTERS = (
    "crowd_microtasks_total",
    "crowd_comparisons_total",
    "crowd_pool_rounds_total",
    "oracle_judgments_total",
    "crowd_cache_hits_total",
    "crowd_budget_ties_total",
)


def lane_scores(seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 1000).normal(0.0, 2.0, N_ITEMS)


def lane_session(
    seed: int, estimator: str = "student", **kwargs
) -> CrowdSession:
    oracle = LatentScoreOracle(lane_scores(seed), GaussianNoise(1.0))
    # Explicit zero-fault policy: fused-round expectations must not shift
    # when the CI fault leg exports CROWD_TOPK_FAULT_RATE (faulty rounds
    # deliberately bypass the fused kernel).
    config = ComparisonConfig(
        confidence=0.95, budget=200, min_workload=5, batch_size=10,
        estimator=estimator, resilience=ResiliencePolicy(),
    )
    return CrowdSession(oracle, config, seed=seed, **kwargs)


def spr_task(seed: int, estimator: str = "student"):
    """One lane: a full SPR query, summarized to comparable scalars."""

    def task():
        session = lane_session(seed, estimator)
        result = spr_topk(session, list(range(N_ITEMS)), K)
        return (tuple(result.topk), session.total_cost, session.total_rounds)

    return task


def run_serial(tasks):
    """The baseline the lattice must reproduce: one lane after another."""
    with use_registry(MetricsRegistry()) as registry:
        results = [task() for task in tasks]
    return results, registry


class TestLatticeBitIdentity:
    def test_lanes_match_serial_execution_exactly(self):
        tasks = [spr_task(seed) for seed in range(6)]
        serial_results, serial_registry = run_serial(tasks)

        with use_registry(MetricsRegistry()) as registry:
            lattice = RacingLattice([spr_task(seed) for seed in range(6)])
            fused_results = lattice.run()

        assert fused_results == serial_results
        # The kernel actually fused: far fewer passes than serial rounds.
        serial_rounds = serial_registry.counter_value("crowd_pool_rounds_total")
        assert 0 < lattice.batches < serial_rounds
        assert (
            registry.counter_value("crowd_lattice_rounds_total")
            == lattice.batches
        )
        for name in PARITY_COUNTERS:
            assert registry.counter_value(name) == serial_registry.counter_value(
                name
            ), name

    def test_mixed_estimator_lanes_fuse_by_signature(self):
        # Student-t and Stein lanes race together; they fuse in separate
        # signature groups but share kernel passes, and each still matches
        # its serial twin bit for bit.
        specs = [(0, "student"), (1, "stein"), (2, "student"), (3, "stein")]
        tasks = [spr_task(seed, est) for seed, est in specs]
        serial_results, _ = run_serial(tasks)
        fused_results = run_lattice(
            [spr_task(seed, est) for seed, est in specs]
        )
        assert fused_results == serial_results

    def test_current_lattice_is_clear_outside_lanes(self):
        assert current_lattice() is None
        RacingLattice([spr_task(0)]).run()
        assert current_lattice() is None


class TestRunLatticeChunking:
    def test_chunked_results_match_unchunked(self):
        tasks = lambda: [spr_task(seed) for seed in range(7)]  # noqa: E731
        serial_results, _ = run_serial(tasks())
        assert run_lattice(tasks(), max_lanes=3) == serial_results
        assert run_lattice(tasks()) == serial_results

    def test_lane_cap_validation(self):
        with pytest.raises(ValueError):
            run_lattice([spr_task(0)], max_lanes=0)
        assert LATTICE_MAX_LANES >= 1
        assert run_lattice([]) == []


class TestLaneFailureIsolation:
    def test_one_exhausted_lane_does_not_break_the_others(self):
        finished: list[int] = []

        def healthy(seed):
            def task():
                out = spr_task(seed)()
                finished.append(seed)
                return out

            return task

        def doomed():
            session = lane_session(9, max_total_cost=50)
            return spr_topk(session, list(range(N_ITEMS)), K)

        lattice = RacingLattice([healthy(0), doomed, healthy(1)])
        with pytest.raises(BudgetExhaustedError):
            lattice.run()
        # Both healthy lanes ran to completion before the error surfaced.
        assert sorted(finished) == [0, 1]

    def test_results_in_task_order(self):
        tasks = [spr_task(seed) for seed in (3, 1, 4)]
        serial_results, _ = run_serial(tasks)
        assert RacingLattice(
            [spr_task(seed) for seed in (3, 1, 4)]
        ).run() == serial_results


class TestQueryBoardRoster:
    def test_lanes_appear_on_the_default_board_during_run(self):
        seen: list[list[str]] = []

        def nosy():
            out = spr_task(0)()
            # By now this lane has raced at least one pool round, so it
            # (and likely its peers) are registered on the default board.
            seen.append(get_query_board().names())
            return out

        RacingLattice([nosy, spr_task(1)], name="probe").run()
        assert any("probe/lane0" in names for names in seen)
        after = get_query_board().names()
        assert not any(name.startswith("probe/") for name in after)


class TestEngineResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == "pool"
        assert resolve_engine("lattice") == "lattice"
        monkeypatch.setenv(ENGINE_ENV, "lattice")
        assert resolve_engine() == "lattice"
        with use_engine("pool"):
            assert resolve_engine() == "pool"  # ambient beats the env
            assert resolve_engine("lattice") == "lattice"
        assert resolve_engine() == "lattice"

    def test_invalid_engine_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            resolve_engine("fpga")
        with pytest.raises(ConfigError):
            set_default_engine("fpga")
        monkeypatch.setenv(ENGINE_ENV, "fpga")
        with pytest.raises(ConfigError):
            resolve_engine()

    def test_set_default_engine_roundtrip(self):
        set_default_engine("lattice")
        try:
            assert resolve_engine() == "lattice"
        finally:
            set_default_engine(None)


class TestExperimentLatticeEngine:
    PARAMS = ExperimentParams(
        dataset="jester", n_items=12, k=3, n_runs=4, seed=0
    )

    def _stats_view(self, stats_by_method):
        return {
            method: [
                (r.cost, r.rounds, r.ndcg, r.precision) for r in stats.runs
            ]
            for method, stats in stats_by_method.items()
        }

    @pytest.mark.faultfree  # fused-pass counters assume fault-free rounds
    def test_run_methods_lattice_matches_serial(self):
        with use_registry(MetricsRegistry()) as serial_registry:
            serial = run_methods(["spr"], self.PARAMS, n_jobs=1)
        with use_registry(MetricsRegistry()) as fused_registry:
            fused = run_methods(["spr"], self.PARAMS, engine="lattice")
        assert self._stats_view(fused) == self._stats_view(serial)
        for name in PARITY_COUNTERS:
            assert fused_registry.counter_value(
                name
            ) == serial_registry.counter_value(name), name
        assert fused_registry.counter_value("experiment_lattice_batches_total") == 1
        assert fused_registry.counter_value("crowd_lattice_rounds_total") > 0

    def test_ambient_lattice_applies_only_to_the_serial_slot(self):
        with use_registry(MetricsRegistry()) as registry:
            with use_engine("lattice"):
                run_methods(["spr"], self.PARAMS, n_jobs=1)
        assert registry.counter_value("experiment_lattice_batches_total") == 1

    def test_env_lattice_engine_is_honored(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "lattice")
        with use_registry(MetricsRegistry()) as registry:
            run_methods(["spr"], self.PARAMS)
        assert registry.counter_value("experiment_lattice_batches_total") == 1


class TestLatticeCheckpointResume:
    def test_lane_killed_mid_lattice_resumes_to_identical_result(
        self, tmp_path
    ):
        baseline = lane_session(7)
        expected = spr_topk(baseline, list(range(N_ITEMS)), K)

        path = tmp_path / "lane.ckpt"

        def doomed():
            session = lane_session(7, max_total_cost=expected.cost // 2)
            session.enable_checkpoints(path, every=1)
            return spr_topk(session, list(range(N_ITEMS)), K)

        with pytest.raises(BudgetExhaustedError):
            RacingLattice([spr_task(0), doomed, spr_task(1)]).run()
        assert path.exists()

        # Resume serially: the checkpoint written inside a lane must be
        # indistinguishable from one written by a serial run.
        oracle = LatentScoreOracle(lane_scores(7), GaussianNoise(1.0))
        restored = CrowdSession.restore(path, oracle)
        restored.cost.ceiling = None
        result = resume_spr_topk(restored)
        assert result.topk == expected.topk
        assert restored.total_cost == baseline.total_cost
        assert restored.total_rounds == baseline.total_rounds


class TestNoDeprecationWarnings:
    def test_representative_flows_are_warning_clean(self):
        # Satellite guard for the compare_group deprecation: nothing in
        # the library's own flows may route through deprecated entry
        # points.  DeprecationWarning is promoted to an error.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = lane_session(11)
            session.compare_many([(1, 0), (3, 2), (5, 4)])
            spr_topk(session, list(range(N_ITEMS)), K)
            run_lattice([spr_task(12)])
            run_methods(
                ["spr"],
                ExperimentParams(
                    dataset="jester", n_items=8, k=2, n_runs=2, seed=0
                ),
                engine="lattice",
            )
