"""Distributional parity of the racing and sequential group engines.

The two engines consume the session RNG in different orders, so any
single seed's workloads differ — that is the PR-3 pitfall that makes
seed-pinned cross-engine assertions meaningless.  What must hold is the
*distribution*: over many seeds the engines buy the same expected number
of microtasks and recover the true top-k equally often.  These tests are
``statistical`` tier: they catch a re-pin that silently changed one
engine's behavior, by distribution instead of by a single seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ComparisonConfig, SPRConfig
from repro.core.spr import spr_topk
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.rng import make_rng, spawn_many

pytestmark = pytest.mark.statistical

SEEDS = 10
# k is large relative to n on purpose: the ranking phase then sorts real
# multi-pair groups, which is where the two engines consume the RNG in
# different orders.  (With tiny k every group degenerates to one pair and
# the engines coincide bit for bit — no parity left to test.)
N_ITEMS, K = 24, 8
GROUP = [(15, 0), (12, 2), (9, 5), (13, 4), (11, 6)]


def _engine_run(engine: str, scores: np.ndarray, seed_rng) -> tuple[int, float]:
    """One SPR query under ``engine``; returns (cost, recall@k)."""
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(
        confidence=0.95, budget=200, min_workload=10, batch_size=20,
        group_engine=engine,
    )
    session = CrowdSession(oracle, config, seed=seed_rng)
    result = spr_topk(session, list(range(N_ITEMS)), K, SPRConfig(sweet_spot=1.5))
    true_topk = {int(i) for i in np.argsort(-scores, kind="stable")[:K]}
    recall = len(set(result.topk) & true_topk) / K
    return session.total_cost, recall


class TestEngineDistributionalParity:
    def test_mean_cost_and_recall_agree_over_seeds(self):
        # Same instance and same per-seed generator state for both
        # engines; only the engine differs.  Means must agree within a
        # band far wider than noise but far narrower than any behavioral
        # regression (e.g. double-charging replays) would produce.
        costs = {"racing": [], "sequential": []}
        recalls = {"racing": [], "sequential": []}
        root = make_rng(2024)
        for seed_rng in spawn_many(root, SEEDS):
            scores = seed_rng.normal(0.0, 3.0, N_ITEMS)
            for engine in costs:
                # Sessions consume the generator; give each engine its own
                # identically-seeded clone.
                clone = np.random.default_rng(seed_rng.bit_generator.seed_seq)
                cost, recall = _engine_run(engine, scores, clone)
                costs[engine].append(cost)
                recalls[engine].append(recall)
        mean_cost = {e: float(np.mean(c)) for e, c in costs.items()}
        mean_recall = {e: float(np.mean(r)) for e, r in recalls.items()}
        assert mean_cost["racing"] == pytest.approx(
            mean_cost["sequential"], rel=0.15
        )
        assert abs(mean_recall["racing"] - mean_recall["sequential"]) <= 0.15
        for engine, value in mean_recall.items():
            assert value >= 0.8, f"{engine} mean recall {value} collapsed"

    def test_group_workloads_agree_in_expectation(self):
        # Direct compare_many parity on a fixed group: expected spend and
        # verdict distribution, not per-seed equality.
        scores = np.linspace(0.0, 7.5, N_ITEMS)
        totals = {"racing": 0, "sequential": 0}
        decided = {"racing": 0, "sequential": 0}
        for seed in range(SEEDS):
            for engine in totals:
                oracle = LatentScoreOracle(scores, GaussianNoise(1.5))
                config = ComparisonConfig(
                    confidence=0.95, budget=120, min_workload=5,
                    batch_size=10, group_engine=engine,
                )
                session = CrowdSession(oracle, config, seed=seed)
                records = session.compare_many(GROUP)
                totals[engine] += session.total_cost
                decided[engine] += sum(r.outcome.decided for r in records)
        assert totals["racing"] == pytest.approx(totals["sequential"], rel=0.15)
        assert abs(decided["racing"] - decided["sequential"]) <= SEEDS


class TestBDPGuaranteeChecks:
    """The second algorithm family's Monte-Carlo guarantees.

    Same philosophy as the engine parity above: what BDP promises is
    distributional — a top-k recall and a PAC violation rate bounded by
    α — so it is pinned by many replications and a Wilson interval, not
    by a single seed.  These are the ``bdp_recall`` and
    ``pac_comparison`` cells the nightly guarantees job also runs.
    """

    def test_bdp_recall_and_pac_rates_stay_under_wilson_bound(self):
        from repro.validation.guarantees import run_guarantee_suite

        report = run_guarantee_suite(
            alphas=(0.05,),
            replications=120,
            n_jobs=4,
            checks=("bdp_recall", "pac_comparison"),
        )
        by_name = {check.name: check for check in report.checks}
        for name in ("bdp_recall", "pac_comparison"):
            check = by_name[name]
            assert check.trials >= 120, name
            assert check.wilson_high <= check.max_failure_rate, (
                f"{name}: {check.failures}/{check.trials} failures, "
                f"wilson95 upper {check.wilson_high:.4f} exceeds "
                f"{check.max_failure_rate:.4f}"
            )
        assert report.passed
