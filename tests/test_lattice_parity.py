"""200-seed parity of the racing lattice against serial execution.

Two claims at population scale, statistical tier (``pytest -m
statistical``):

* **Exact parity** — the lattice is designed to be bit-identical per
  lane, so over 200 seeds every fused query must reproduce its serial
  twin's top-k, cost and rounds *exactly*.  This is far stronger than a
  distributional check and catches any fusion bug (padding, signature
  grouping, RNG ordering) that happens to survive the handful of tier-1
  seeds.
* **Distributional parity vs the sequential engine** — lattice lanes
  race (racing group engine), so against the historical sequential
  engine only the distribution is comparable: over the same 200 seeds
  the mean spend and mean recall must agree within the same bands the
  racing-vs-sequential parity suite uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.spr import spr_topk
from repro.crowd.lattice import run_lattice
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise

pytestmark = pytest.mark.statistical

SEEDS = 200
N_ITEMS, K = 12, 3


def seed_scores(seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 5000).normal(0.0, 2.5, N_ITEMS)


def run_query(seed: int, engine: str = "racing"):
    oracle = LatentScoreOracle(seed_scores(seed), GaussianNoise(1.0))
    config = ComparisonConfig(
        confidence=0.95, budget=150, min_workload=5, batch_size=10,
        group_engine=engine,
    )
    session = CrowdSession(oracle, config, seed=seed)
    result = spr_topk(session, list(range(N_ITEMS)), K)
    return result, session


def summarize(seed: int, engine: str = "racing"):
    result, session = run_query(seed, engine)
    return (tuple(result.topk), session.total_cost, session.total_rounds)


def recall(topk, scores) -> float:
    truth = {int(i) for i in np.argsort(-scores, kind="stable")[:K]}
    return len(set(topk) & truth) / K


class TestLatticeExactParity:
    def test_200_seeds_bit_identical_to_serial(self):
        serial = [summarize(seed) for seed in range(SEEDS)]
        fused = run_lattice(
            [lambda seed=seed: summarize(seed) for seed in range(SEEDS)]
        )
        mismatches = [
            (seed, serial[seed], fused[seed])
            for seed in range(SEEDS)
            if serial[seed] != fused[seed]
        ]
        assert not mismatches, f"{len(mismatches)} seeds diverged: " + repr(
            mismatches[:5]
        )


class TestLatticeVsSequentialDistribution:
    def test_mean_cost_and_recall_agree_over_200_seeds(self):
        costs = {"lattice": [], "sequential": []}
        recalls = {"lattice": [], "sequential": []}

        fused = run_lattice(
            [lambda seed=seed: summarize(seed) for seed in range(SEEDS)]
        )
        for seed, (topk, cost, _rounds) in enumerate(fused):
            costs["lattice"].append(cost)
            recalls["lattice"].append(recall(topk, seed_scores(seed)))
        for seed in range(SEEDS):
            topk, cost, _rounds = summarize(seed, engine="sequential")
            costs["sequential"].append(cost)
            recalls["sequential"].append(recall(topk, seed_scores(seed)))

        mean_cost = {e: float(np.mean(c)) for e, c in costs.items()}
        mean_recall = {e: float(np.mean(r)) for e, r in recalls.items()}
        assert mean_cost["lattice"] == pytest.approx(
            mean_cost["sequential"], rel=0.15
        )
        assert abs(mean_recall["lattice"] - mean_recall["sequential"]) <= 0.15
        for engine, value in mean_recall.items():
            assert value >= 0.8, f"{engine} mean recall {value} collapsed"
