"""Shared fixtures: small oracles, sessions and item sets for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.items import ItemSet
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.experiments.parallel import use_jobs


@pytest.fixture(autouse=True)
def ambient_jobs(request):
    """Install the session's ``--jobs`` as the ambient worker count.

    Entry points called with ``n_jobs=None`` (the experiment harness, the
    guarantee suite) then fan out accordingly — this is how the
    ``pytest -m statistical --jobs 2`` CI leg parallelizes without any
    per-test plumbing.  The default (1) keeps every test serial.
    """
    with use_jobs(request.config.getoption("--jobs")):
        yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_latent_session(
    scores,
    sigma: float = 1.0,
    seed: int = 0,
    **config_kwargs,
) -> CrowdSession:
    """A session over a latent-score oracle with Gaussian worker noise.

    ``scores`` may be a list/array (dense ids 0..n-1).  Config defaults are
    test-friendly: fast cold start, generous confidence.
    """
    defaults = dict(confidence=0.95, budget=1000, min_workload=2, batch_size=10)
    defaults.update(config_kwargs)
    oracle = LatentScoreOracle(np.asarray(scores, dtype=float), GaussianNoise(sigma))
    return CrowdSession(oracle, ComparisonConfig(**defaults), seed=seed)


def make_items(scores) -> ItemSet:
    """An ItemSet with dense ids over ``scores``."""
    scores = np.asarray(scores, dtype=float)
    return ItemSet(ids=np.arange(len(scores)), scores=scores)


@pytest.fixture
def five_item_session() -> CrowdSession:
    """Five well-separated items: comparisons resolve at the cold start."""
    return make_latent_session([0.0, 2.0, 4.0, 6.0, 8.0], sigma=0.5, seed=7)


@pytest.fixture
def five_items() -> ItemSet:
    return make_items([0.0, 2.0, 4.0, 6.0, 8.0])
