"""The shared cross-query cache: warm-hit identity, LRU eviction integrity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.persistence import cache_from_json, cache_to_json
from repro.service import QueryService, QuerySpec, SharedJudgmentCache, session_for
from repro.service.runner import execute_spec
from repro.telemetry import MetricsRegistry

SPEC_A = QuerySpec(
    method="spr", k=3, dataset="synthetic", n_items=12, seed=3, tenant="acme"
)
SPEC_B = SPEC_A.with_(seed=9)  # same working set, different draws


def shared(registry=None, **kwargs) -> SharedJudgmentCache:
    return SharedJudgmentCache(
        registry=registry or MetricsRegistry(), **kwargs
    )


class TestTenantNamespaces:
    def test_tenants_never_see_each_other(self):
        cache = shared()
        cache.tenant("a").append(1, 2, np.array([1.0, -1.0]))
        assert cache.tenant("b").count(1, 2) == 0
        assert cache.tenant("a").count(1, 2) == 2
        assert cache.tenants() == ["a", "b"]

    def test_tenant_handle_is_stable(self):
        cache = shared()
        assert cache.tenant("a") is cache.tenant("a")

    def test_counters_attribute_to_the_reading_tenant(self):
        registry = MetricsRegistry()
        cache = shared(registry)
        cache.tenant("a").append(1, 2, np.array([1.0]))
        cache.tenant("a").bag(1, 2)   # hit
        cache.tenant("b").bag(1, 2)   # miss (different namespace)
        assert registry.counter_total("service_cache_hits_total") == 1
        assert registry.counter_total("service_cache_misses_total") == 1
        stats = cache.stats()["tenants"]
        assert stats["a"]["hits"] == 1
        assert stats["b"]["misses"] == 1


class TestWarmHitIdentity:
    """A warm service query == a standalone run with the same pre-seeded cache."""

    @pytest.mark.faultfree  # pins exact verdicts of seeded traces
    def test_cross_query_hits_are_bit_identical_to_a_preseeded_cold_run(self):
        # 1. Cold standalone run of A: its judgments are the future cache.
        registry = MetricsRegistry()
        session_a, items_a = session_for(SPEC_A, registry)
        execute_spec(session_a, SPEC_A, items_a)
        judgments = cache_to_json(session_a.cache)

        # 2. Standalone run of B over a *copy* of A's judgments: the
        #    expected warm verdicts.
        session_b, items_b = session_for(SPEC_B, registry)
        session_b.use_cache(cache_from_json(judgments))
        expected = execute_spec(session_b, SPEC_B, items_b)
        expected_purchases = session_b.total_cost

        # 3. The service runs A then B on the same tenant (one worker =
        #    strictly sequential), so B starts on exactly A's judgments.
        with QueryService(max_workers=1, registry=MetricsRegistry()) as service:
            service.submit(SPEC_A).result(timeout=120)
            handle = service.submit(SPEC_B)
            warm = handle.result(timeout=120)

        assert list(warm.topk) == list(expected.topk)
        assert warm.rounds == expected.rounds
        assert warm.cost == expected_purchases
        hits = service.cache.stats()["tenants"]["acme"]["hits"]
        assert hits > 0

    @pytest.mark.faultfree
    def test_identical_warm_query_repurchases_nothing(self):
        with QueryService(max_workers=1, registry=MetricsRegistry()) as service:
            first = service.submit(SPEC_A).result(timeout=120)
            again = service.submit(SPEC_A).result(timeout=120)
        assert list(again.topk) == list(first.topk)
        assert again.cost == 0  # every comparison answered from the cache


class TestLruEviction:
    def _fill(self, cache, tenant, pairs, width=4):
        namespace = cache.tenant(tenant)
        for n in range(pairs):
            namespace.append(n, n + 1000, np.ones(width))
        return namespace

    def test_entry_bound_evicts_least_recently_used(self):
        cache = shared(max_entries=3)
        namespace = self._fill(cache, "a", 3)
        namespace.bag(0, 1000)  # refresh pair 0: pair 1 is now the LRU
        namespace.append(50, 1050, np.ones(4))
        assert cache.entries == 3
        assert namespace.count(1, 1001) == 0   # evicted
        assert namespace.count(0, 1000) == 4   # refreshed, retained
        assert cache.stats()["tenants"]["a"]["evictions"] == 1

    def test_byte_bound_holds(self):
        cache = shared(max_bytes=2_000)
        self._fill(cache, "a", 40, width=8)
        assert cache.bytes <= 2_000
        assert cache.entries < 40

    def test_eviction_crosses_tenants_by_recency(self):
        cache = shared(max_entries=2)
        self._fill(cache, "old", 2)
        self._fill(cache, "new", 2)
        assert cache.entries == 2
        assert cache.tenant("old").pair_count == 0
        assert cache.tenant("new").pair_count == 2

    def test_eviction_never_corrupts_in_flight_moments(self):
        """Dropping a bag must neither tear surviving moments nor
        invalidate numpy views handed out before the eviction."""
        cache = shared(max_entries=4)
        namespace = self._fill(cache, "a", 4, width=6)
        held_views = {
            (n, n + 1000): namespace.bag(n, n + 1000) for n in range(4)
        }
        frozen = {key: view.copy() for key, view in held_views.items()}
        # Blow well past the bound; everything originally cached evicts.
        self._fill(cache, "a", 12)
        for key, view in held_views.items():
            np.testing.assert_array_equal(view, frozen[key])
        # Surviving bags' running moments agree with a recomputation from
        # the raw judgments, and the totals reconcile.
        total = 0
        for i, j in namespace.pairs():
            values = namespace.bag(i, j)
            n, mean, var = namespace.moments(i, j)
            assert n == values.size
            assert mean == pytest.approx(float(values.mean()))
            if n > 1:
                assert var == pytest.approx(float(values.var(ddof=1)))
            total += values.size
        assert namespace.total_samples == total
        assert cache.entries <= 4

    def test_bounded_service_still_answers_correctly(self):
        # With a pathologically small cache the service repurchases
        # evidence instead of corrupting it: queries complete and respect
        # their ceilings, and the eviction counters record the churn.
        registry = MetricsRegistry()
        with QueryService(
            max_workers=2, cache_entries=8, registry=registry
        ) as service:
            handles = [
                service.submit(SPEC_A.with_(seed=n, cost_sla=500_000))
                for n in range(4)
            ]
            outcomes = [handle.result(timeout=300) for handle in handles]
        assert all(len(outcome.topk) == 3 for outcome in outcomes)
        assert service.cache.entries <= 8
        assert registry.counter_total("service_cache_evictions_total") > 0

    def test_gauges_track_the_lru(self):
        registry = MetricsRegistry()
        cache = shared(registry, max_entries=2)
        self._fill(cache, "a", 5)
        assert cache.entries == 2
        assert cache.bytes == sum(cache._lru.values())
        assert registry.gauge("service_cache_entries").value == 2
        assert registry.gauge("service_cache_bytes").value == cache.bytes
