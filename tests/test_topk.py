"""`top_k_indices`: argpartition-based selection must match stable argsort.

Every hot ranking site (`heuristics`, `crowdbt`, SPR's k-th-best-winner
selection, the guarantee replications) replaced
``np.argsort(-values, kind="stable")[:k]`` with
:func:`repro.core.topk.top_k_indices`.  The contract is *exact
equivalence* — same indices, same order, same tie-breaks — plus a
no-regression guarantee: on large arrays with small k the selection
must not be slower than the full sort it replaced.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.topk import top_k_indices


def reference(values: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(-values, kind="stable")[: max(k, 0)]


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_arrays_match_stable_argsort(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        values = rng.normal(0.0, 3.0, n)
        for k in (1, 2, n // 2, n - 1, n):
            if k < 1:
                continue
            np.testing.assert_array_equal(
                top_k_indices(values, k), reference(values, k), err_msg=f"k={k}"
            )

    @pytest.mark.parametrize("seed", range(20))
    def test_heavy_ties_keep_stable_order(self, seed):
        # Ties are the dangerous case: argpartition orders them
        # arbitrarily, so the boundary fill must re-impose the stable
        # tie-break (lowest index first) exactly like the full sort.
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 120))
        values = rng.integers(0, 4, n).astype(np.float64)
        for k in (1, n // 3, n // 2, n):
            if k < 1:
                continue
            np.testing.assert_array_equal(
                top_k_indices(values, k), reference(values, k), err_msg=f"k={k}"
            )

    def test_all_equal_values(self):
        values = np.full(17, 2.5)
        np.testing.assert_array_equal(
            top_k_indices(values, 5), np.arange(5)
        )

    def test_nan_falls_back_to_full_sort_semantics(self):
        values = np.asarray([3.0, np.nan, 1.0, 2.0, np.nan])
        for k in (1, 2, 3, 5):
            np.testing.assert_array_equal(
                top_k_indices(values, k), reference(values, k), err_msg=f"k={k}"
            )

    def test_k_edge_cases(self):
        values = np.asarray([1.0, 3.0, 2.0])
        assert top_k_indices(values, 0).size == 0
        np.testing.assert_array_equal(top_k_indices(values, 3), [1, 2, 0])
        # k beyond n clamps to n, like slicing the full sort does.
        np.testing.assert_array_equal(top_k_indices(values, 10), [1, 2, 0])

    def test_integer_input(self):
        values = np.asarray([5, 1, 5, 3, 5])
        np.testing.assert_array_equal(
            top_k_indices(values, 3), reference(values.astype(float), 3)
        )


class TestNoRegression:
    def test_selection_not_slower_than_full_sort_on_large_input(self):
        # The whole point of the argpartition idiom: k << n selection in
        # O(n) instead of O(n log n).  Best-of-5 with a 2x tolerance —
        # the measured gap on a 200k-element array is several-fold, so
        # this only fails if the idiom regresses to a full sort *plus*
        # real overhead.
        rng = np.random.default_rng(0)
        values = rng.normal(0.0, 1.0, 200_000)
        k = 10
        np.testing.assert_array_equal(
            top_k_indices(values, k), reference(values, k)
        )

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - started)
            return best

        sort_s = best_of(lambda: reference(values, k))
        select_s = best_of(lambda: top_k_indices(values, k))
        assert select_s <= sort_s * 2.0, (
            f"top_k_indices {select_s:.5f}s vs full argsort {sort_s:.5f}s"
        )
