"""Property-based tests for the sequential testers and the judgment cache.

Hypothesis generates judgment streams; the properties hold for *any*
stream, not just the seeds the rest of the suite pins:

* confidence intervals shrink monotonically with ``n`` (for Student at a
  held sample deviation — more data can legitimately raise ``S`` — and
  unconditionally for the frozen-variance Stein stage);
* every tester is symmetric under judgment negation: flipping the sign of
  the whole stream flips the verdict and consumes the same samples;
* the cache's running bag moments match a fresh numpy recomputation to
  1e-9, no matter how the stream is chunked or which pair orientation
  each chunk arrives in.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import JudgmentCache
from repro.core.estimators import HoeffdingTester, SteinTester, StudentTester
from repro.stats.tdist import t_quantile
from repro.validation import InvariantEngine

# Bounded, well-scaled judgments: the 1e-9 moment tolerance is about the
# running-sum algebra, not about catastrophic cancellation at 1e300.
judgment = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
judgment_streams = st.lists(judgment, min_size=2, max_size=80)
alphas = st.sampled_from([0.01, 0.05, 0.1, 0.2])

TESTER_FACTORIES = {
    "student": lambda alpha: StudentTester(alpha=alpha, min_workload=2),
    "stein": lambda alpha: SteinTester(alpha=alpha, min_workload=2),
    "hoeffding": lambda alpha: HoeffdingTester(
        alpha=alpha, min_workload=2, value_range=100.0
    ),
}


class TestIntervalsShrink:
    @given(alpha=alphas, start=st.integers(2, 50))
    @settings(deadline=None, derandomize=True)
    def test_student_margin_decreases_in_n_at_held_deviation(self, alpha, start):
        # Student's half-width is t_{α/2, n-1}·S/√n: at any held S the
        # n-dependent factor must fall strictly with every extra sample.
        factors = [
            t_quantile(alpha, n - 1) / math.sqrt(n)
            for n in range(start, start + 30)
        ]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    @given(values=judgment_streams, alpha=alphas, extra=st.integers(1, 30))
    @settings(deadline=None, derandomize=True)
    def test_student_interval_never_widens_on_mean_preserving_data(
        self, values, alpha, extra
    ):
        # Samples equal to the current mean leave μ̄ in place, cannot raise
        # S, and raise n — all three move the interval inward (or keep it).
        tester = StudentTester(alpha=alpha, min_workload=2)
        tester.push_many(np.asarray(values))
        low, high = tester.interval()
        n0, mean = tester.state.n, tester.state.mean
        tester.push_many(np.full(extra, mean))
        low2, high2 = tester.interval()
        # The running-sum variance cancels catastrophically when the true
        # deviation is ~0 at a large mean (s2 ≈ n·mean²), so the width can
        # gain a numerical floor of order t·√(ε·n)·|mean| that no exact
        # arithmetic would show.  Allow exactly that, nothing more.
        cancellation = (
            t_quantile(alpha, n0 - 1)
            * math.sqrt(np.finfo(float).eps * n0 * (n0 + extra))
            * max(1.0, abs(mean))
        )
        slack = 1e-9 * max(1.0, abs(low), abs(high)) + cancellation
        assert high2 - low2 <= (high - low) + slack
        assert low2 >= low - slack and high2 <= high + slack

    @given(values=judgment_streams, alpha=alphas)
    @settings(deadline=None, derandomize=True)
    def test_stein_frozen_half_width_decreases_in_n(self, values, alpha):
        # Stage variance and df are frozen after the first stage, so the
        # second-stage half-width S·t/√n is 1/√n — strictly decreasing.
        tester = SteinTester(alpha=alpha, min_workload=len(values))
        tester.push_many(np.asarray(values))
        stage = tester.stage_variance
        assert not math.isnan(stage)
        tq = t_quantile(alpha, tester.stage_df)
        widths = [
            math.sqrt(stage) * tq / math.sqrt(n)
            for n in range(len(values), len(values) + 30)
        ]
        assert all(a >= b for a, b in zip(widths, widths[1:]))
        if stage > 0:
            assert all(a > b for a, b in zip(widths, widths[1:]))


class TestNegationSymmetry:
    @given(
        values=judgment_streams,
        alpha=alphas,
        kind=st.sampled_from(sorted(TESTER_FACTORIES)),
    )
    @settings(deadline=None, derandomize=True)
    def test_scan_is_antisymmetric(self, values, alpha, kind):
        values = np.asarray(values)
        straight = TESTER_FACTORIES[kind](alpha)
        mirrored = TESTER_FACTORIES[kind](alpha)
        consumed_s, decision_s = straight.scan(values)
        consumed_m, decision_m = mirrored.scan(-values)
        assert consumed_s == consumed_m
        if decision_s is None:
            assert decision_m is None
        else:
            assert decision_m == -decision_s
        assert straight.state.n == mirrored.state.n
        assert straight.state.s1 == pytest.approx(-mirrored.state.s1)
        assert straight.state.s2 == pytest.approx(mirrored.state.s2)

    @given(values=judgment_streams, alpha=alphas)
    @settings(deadline=None, derandomize=True)
    def test_student_interval_mirrors(self, values, alpha):
        values = np.asarray(values)
        straight = StudentTester(alpha=alpha, min_workload=2)
        mirrored = StudentTester(alpha=alpha, min_workload=2)
        straight.push_many(values)
        mirrored.push_many(-values)
        low, high = straight.interval()
        mlow, mhigh = mirrored.interval()
        assert mlow == pytest.approx(-high, abs=1e-12, rel=1e-9)
        assert mhigh == pytest.approx(-low, abs=1e-12, rel=1e-9)


class TestCacheMoments:
    @given(
        chunks=st.lists(
            st.tuples(st.lists(judgment, min_size=1, max_size=20), st.booleans()),
            min_size=1,
            max_size=10,
        )
    )
    @settings(deadline=None, derandomize=True)
    def test_running_moments_match_numpy(self, chunks):
        # Chunks arrive in both pair orientations; the bag normalizes the
        # sign, and its O(1) running moments must equal a fresh reduction.
        cache = JudgmentCache()
        recorded: list[float] = []
        for values, flipped in chunks:
            if flipped:
                cache.append(1, 0, np.asarray(values))
                recorded.extend(-v for v in values)
            else:
                cache.append(0, 1, np.asarray(values))
                recorded.extend(values)
        expected = np.asarray(recorded)
        n, mean, var = cache.moments(0, 1)
        assert n == expected.size
        assert np.allclose(cache.bag(0, 1), expected, atol=0.0)
        assert mean == pytest.approx(float(np.mean(expected)), abs=1e-9, rel=1e-9)
        if n >= 2:
            assert var == pytest.approx(
                float(np.var(expected, ddof=1)), abs=1e-9, rel=1e-9
            )
        # The invariant engine audits the same identity in strict mode.
        engine = InvariantEngine(strict=True)
        assert engine.check_cache_moments(cache, atol=1e-7)
