"""The full-scale evaluation orchestrator script."""

import pathlib
import subprocess
import sys

SCRIPT = pathlib.Path(__file__).parent.parent / "scripts" / "run_full_evaluation.py"


def test_script_runs_a_cheap_subset(tmp_path):
    result = subprocess.run(
        [
            sys.executable, str(SCRIPT),
            "--runs", "1",
            "--only", "fig15",
            "--out", str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert (tmp_path / "fig15.txt").exists()
    assert (tmp_path / "fig15.json").exists()
    assert (tmp_path / "fig15.csv").exists()
    assert "n_b - n" in (tmp_path / "fig15.txt").read_text()


def test_script_rejects_unknown_experiment(tmp_path):
    result = subprocess.run(
        [
            sys.executable, str(SCRIPT),
            "--only", "fig99",
            "--out", str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
