"""Quality metrics: NDCG, precision/recall, Kendall tau, comparison accuracy."""

import math

import numpy as np
import pytest

from repro.core.comparison import ComparisonRecord
from repro.core.outcomes import Outcome
from repro.metrics import (
    comparison_accuracy,
    dcg,
    kendall_tau,
    ndcg_at_k,
    top_k_precision,
    top_k_recall,
)
from tests.conftest import make_items


@pytest.fixture
def items():
    # ids 0..9, scores equal to ids: true order 9, 8, ..., 0.
    return make_items([float(i) for i in range(10)])


class TestNDCG:
    def test_perfect_list_scores_one(self, items):
        for scheme in ("topk", "linear", "exponential"):
            assert ndcg_at_k(items, [9, 8, 7], 3, scheme=scheme) == pytest.approx(1.0)

    def test_worst_list_scores_low(self, items):
        assert ndcg_at_k(items, [0, 1, 2], 3) == 0.0  # topk gains: no overlap
        assert ndcg_at_k(items, [0, 1, 2], 3, scheme="linear") < 0.5

    def test_order_within_topk_matters(self, items):
        swapped = ndcg_at_k(items, [8, 9, 7], 3)
        assert swapped < 1.0
        assert swapped > ndcg_at_k(items, [7, 8, 9], 3)

    def test_one_wrong_item_beats_two(self, items):
        one = ndcg_at_k(items, [9, 8, 0], 3)
        two = ndcg_at_k(items, [9, 1, 0], 3)
        assert 1.0 > one > two

    def test_topk_gains_ignore_out_of_topk_rank(self, items):
        # items 0 and 4 are both outside the true top-3: equally worthless.
        assert ndcg_at_k(items, [9, 8, 0], 3) == ndcg_at_k(items, [9, 8, 4], 3)

    def test_dcg_discounts_logarithmically(self, items):
        assert dcg(items, [9], scheme="linear") == pytest.approx(10.0)
        assert dcg(items, [9, 8], scheme="linear") == pytest.approx(
            10.0 + 9.0 / math.log2(3)
        )

    def test_dcg_topk_gains(self, items):
        # k=2: rank-1 item worth 2, rank-2 worth 1, others 0.
        assert dcg(items, [9, 8], scheme="topk") == pytest.approx(
            2.0 + 1.0 / math.log2(3)
        )
        assert dcg(items, [0, 1], scheme="topk") == 0.0

    def test_truncates_to_k(self, items):
        assert ndcg_at_k(items, [9, 8, 7, 0, 1], 3) == pytest.approx(1.0)

    def test_exponential_gains_supported(self, items):
        assert ndcg_at_k(items, [9, 8, 7], 3, scheme="exponential") == pytest.approx(1.0)
        assert ndcg_at_k(items, [0, 1, 2], 3, scheme="exponential") < ndcg_at_k(
            items, [0, 1, 2], 3, scheme="linear"
        )

    def test_duplicates_rejected(self, items):
        with pytest.raises(ValueError):
            ndcg_at_k(items, [9, 9], 2)

    def test_unknown_scheme_rejected(self, items):
        with pytest.raises(ValueError):
            ndcg_at_k(items, [9], 1, scheme="cubic")

    def test_invalid_k_rejected(self, items):
        with pytest.raises(ValueError):
            ndcg_at_k(items, [9], 0)


class TestPrecisionRecall:
    def test_perfect(self, items):
        assert top_k_precision(items, [9, 8, 7], 3) == 1.0
        assert top_k_recall(items, [9, 8, 7], 3) == 1.0

    def test_partial(self, items):
        assert top_k_precision(items, [9, 8, 0], 3) == pytest.approx(2 / 3)
        assert top_k_recall(items, [9, 8, 0], 3) == pytest.approx(2 / 3)

    def test_order_ignored(self, items):
        assert top_k_precision(items, [7, 9, 8], 3) == 1.0

    def test_empty_returned(self, items):
        assert top_k_precision(items, [], 3) == 0.0
        assert top_k_recall(items, [], 3) == 0.0

    def test_validation(self, items):
        with pytest.raises(ValueError):
            top_k_precision(items, [9], 0)
        with pytest.raises(ValueError):
            top_k_recall(items, [9], 0)


class TestKendallTau:
    def test_perfect_order(self, items):
        assert kendall_tau(items, [9, 8, 7, 6]) == 1.0

    def test_reversed_order(self, items):
        assert kendall_tau(items, [6, 7, 8, 9]) == -1.0

    def test_single_swap(self, items):
        assert kendall_tau(items, [8, 9, 7]) == pytest.approx(1 / 3)

    def test_short_lists(self, items):
        assert kendall_tau(items, [5]) == 1.0
        assert kendall_tau(items, []) == 1.0

    def test_duplicates_rejected(self, items):
        with pytest.raises(ValueError):
            kendall_tau(items, [9, 9])


class TestComparisonAccuracy:
    def _record(self, left, right, outcome):
        return ComparisonRecord(
            left=left, right=right, outcome=outcome,
            workload=30, cost=30, rounds=1, mean=0.5, std=1.0,
        )

    def test_correct_verdict(self, items):
        assert comparison_accuracy(items, self._record(9, 0, Outcome.LEFT)) == 1.0
        assert comparison_accuracy(items, self._record(0, 9, Outcome.RIGHT)) == 1.0

    def test_wrong_verdict(self, items):
        assert comparison_accuracy(items, self._record(0, 9, Outcome.LEFT)) == 0.0

    def test_tie_is_excluded(self, items):
        assert comparison_accuracy(items, self._record(0, 9, Outcome.TIE)) is None


class TestSpearmanFootrule:
    def test_perfect_order_is_zero(self, items):
        from repro.metrics import spearman_footrule

        assert spearman_footrule(items, [9, 8, 7, 6]) == 0.0

    def test_reversal_is_one(self, items):
        from repro.metrics import spearman_footrule

        assert spearman_footrule(items, [6, 7, 8, 9]) == 1.0

    def test_single_swap_partial(self, items):
        from repro.metrics import spearman_footrule

        value = spearman_footrule(items, [8, 9, 7])
        assert 0.0 < value < 1.0

    def test_short_lists_zero(self, items):
        from repro.metrics import spearman_footrule

        assert spearman_footrule(items, [5]) == 0.0
        assert spearman_footrule(items, []) == 0.0

    def test_duplicates_rejected(self, items):
        from repro.metrics import spearman_footrule

        with pytest.raises(ValueError):
            spearman_footrule(items, [9, 9])

    def test_odd_length_normalization(self, items):
        from repro.metrics import spearman_footrule

        # Max disarray for odd m uses (m^2 - 1)/2: the full reversal.
        assert spearman_footrule(items, [5, 6, 7, 8, 9]) == 1.0
