"""Batched record synthesis is field-for-field the historical per-row loop.

``race_group`` used to synthesize its ``ComparisonRecord`` list one row at
a time: ``pool.moments(slot)`` + orientation flip + ``from_race`` per
occurrence.  The array-native rewrite computes the per-slot moments, the
flips and the fresh/replay masks in whole-group passes and builds every
record with one :meth:`ComparisonRecord.from_arrays` call.  This suite
pins the equivalence in both layers:

* unit: ``from_arrays`` equals element-wise ``from_race`` on arrays that
  exercise every code sign, empty workloads and NaN moments;
* integration: the live engine's record stream equals a verbatim
  re-implementation of the historical per-row synthesis, run against a
  twin session with identical seeding — across student/stein/hoeffding
  estimators, cache replays, degraded (deadline) ties, fault retries and
  repeated/flipped pairs inside one group.

Equality is exact (order included, float bits included, NaN == NaN) —
this is a bit-parity contract, not a statistical one.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import (
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.core.comparison import ComparisonRecord
from repro.crowd.group import race_group
from repro.crowd.oracle import BinaryOracle, LatentScoreOracle
from repro.crowd.pool import RacingPool
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = pytest.mark.faultfree  # fault cases seed their own injector


def _float_key(value: float) -> str:
    return "nan" if math.isnan(value) else float(value).hex()


def _record_key(record: ComparisonRecord) -> tuple:
    """Every field, rendered bit-exactly (NaNs collapse to one token)."""
    return (
        record.left,
        record.right,
        record.outcome,
        record.workload,
        record.cost,
        record.rounds,
        _float_key(record.mean),
        _float_key(record.std),
    )


def assert_streams_identical(actual, expected):
    assert [(_record_key(r), fresh) for r, fresh in actual] == [
        (_record_key(r), fresh) for r, fresh in expected
    ]


# ----------------------------------------------------------------------
# unit layer: from_arrays vs element-wise from_race
# ----------------------------------------------------------------------
class TestFromArrays:
    def test_matches_from_race_field_for_field(self):
        # Codes of every sign, an empty workload (NaN-mean substitution),
        # sub-2 workloads (NaN std) and a cache replay (cost 0).
        lefts = np.array([3, 7, 5, 2, 9], dtype=np.int64)
        rights = np.array([4, 1, 8, 6, 0], dtype=np.int64)
        codes = np.array([1, -1, 0, 0, -1], dtype=np.int64)
        workloads = np.array([12, 7, 0, 1, 30], dtype=np.int64)
        costs = np.array([12, 0, 0, 1, 25], dtype=np.int64)
        rounds = np.array([2, 0, 0, 1, 3], dtype=np.int64)
        means = np.array([0.75, -1.5, 123.0, 0.25, -0.0])
        stds = np.array([0.5, math.nan, math.nan, math.nan, 1.25])

        batched = ComparisonRecord.from_arrays(
            lefts,
            rights,
            codes,
            workloads=workloads,
            costs=costs,
            rounds=rounds,
            means=means,
            stds=stds,
        )
        reference = [
            ComparisonRecord.from_race(
                int(lefts[i]),
                int(rights[i]),
                int(codes[i]),
                workload=int(workloads[i]),
                cost=int(costs[i]),
                rounds=int(rounds[i]),
                mean=float(means[i]),
                std=float(stds[i]),
            )
            for i in range(len(lefts))
        ]
        assert [_record_key(r) for r in batched] == [
            _record_key(r) for r in reference
        ]
        # Scalar field types survive .tolist() — no numpy scalars leak out.
        for record in batched:
            assert type(record.left) is int
            assert type(record.workload) is int
            assert type(record.mean) is float

    def test_empty_arrays_build_no_records(self):
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=float)
        assert (
            ComparisonRecord.from_arrays(
                empty_i,
                empty_i,
                empty_i,
                workloads=empty_i,
                costs=empty_i,
                rounds=empty_i,
                means=empty_f,
                stds=empty_f,
            )
            == []
        )


# ----------------------------------------------------------------------
# integration layer: the live engine vs the historical per-row loop
# ----------------------------------------------------------------------
def historical_race_group(session, pairs):
    """The pre-rewrite ``race_group`` synthesis, verbatim.

    The racing itself (RacingPool rounds) is the shared vectorized kernel;
    what this preserves is the *per-row* record synthesis that the batched
    ``from_arrays`` tail replaced — the reference the rewrite must match.
    """
    first_of: dict[tuple[int, int], int] = {}
    unique: list[tuple[int, int]] = []
    slot_of: list[int] = []
    for left, right in pairs:
        left, right = int(left), int(right)
        key = (left, right) if left < right else (right, left)
        slot = first_of.get(key)
        if slot is None:
            slot = len(unique)
            first_of[key] = slot
            unique.append((left, right))
        slot_of.append(slot)

    pool = RacingPool(session, unique, charge_latency=False)
    replayed = pool.n.copy()
    code_of = dict(pool.initial_decisions)
    rounds_of = [0] * len(unique)
    round_no = 0
    while not pool.is_done:
        round_no += 1
        for idx, code in pool.round():
            code_of[idx] = code
            rounds_of[idx] = round_no

    records: list[tuple[ComparisonRecord, bool]] = []
    seen: set[int] = set()
    for (left, right), slot in zip(pairs, slot_of):
        left, right = int(left), int(right)
        fresh = slot not in seen
        seen.add(slot)
        workload, mean, var = pool.moments(slot)
        code = code_of.get(slot, 0)
        if (left, right) != unique[slot]:  # opposite orientation of the race
            code = -code
            mean = -mean
        records.append(
            (
                ComparisonRecord.from_race(
                    left,
                    right,
                    code,
                    workload=workload,
                    cost=int(pool.n[slot] - replayed[slot]) if fresh else 0,
                    rounds=rounds_of[slot] if fresh else 0,
                    mean=mean,
                    std=math.sqrt(var) if not math.isnan(var) else math.nan,
                ),
                fresh,
            )
        )
    return records


N_ITEMS = 10

#: Repeats and both orientations of the same pair inside one group, so the
#: fresh/replay masks and the orientation flips are all exercised.
GROUP = [(0, 1), (2, 3), (1, 0), (4, 5), (3, 2), (0, 1), (6, 7), (8, 9)]


def _scores(seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 400).normal(0.0, 2.0, N_ITEMS)


def _build(variant: str, seed: int) -> CrowdSession:
    base = dict(confidence=0.95, budget=120, min_workload=5, batch_size=10)
    if variant in ("stein", "hoeffding"):
        base["estimator"] = variant
    elif variant == "deadline":
        # Near-tied items + a tight deadline: pairs degrade to ties.
        base["resilience"] = ResiliencePolicy(retry=RetryPolicy(deadline_rounds=2))
    elif variant == "faulty":
        base["resilience"] = ResiliencePolicy(
            fault=FaultPolicy(
                timeout_rate=0.08,
                loss_rate=0.04,
                duplicate_rate=0.03,
                outage_rate=0.02,
                seed=seed,
            )
        )
    sigma = 6.0 if variant == "deadline" else 1.0
    oracle = LatentScoreOracle(_scores(seed), GaussianNoise(sigma))
    if variant == "hoeffding":
        oracle = BinaryOracle(oracle)
    return CrowdSession(oracle, ComparisonConfig(**base), seed=seed)


def _streams(variant: str, seed: int, warm: bool):
    """(engine stream, historical stream) from twin identically-seeded
    sessions; ``warm`` races the group once first so the measured call is
    served (partly or fully) from the judgment cache."""
    out = []
    for synthesize in (race_group, historical_race_group):
        with use_registry(MetricsRegistry()):
            session = _build(variant, seed)
            if warm:
                # Same engine call on both twins: identical RNG draw and
                # cache state going into the measured group.
                race_group(session, GROUP)
            out.append(synthesize(session, GROUP))
    return out


class TestEngineMatchesHistoricalSynthesis:
    @pytest.mark.parametrize("variant", ["student", "stein", "hoeffding"])
    def test_estimators_cold(self, variant):
        for seed in range(8):
            actual, expected = _streams(variant, seed, warm=False)
            assert_streams_identical(actual, expected)

    @pytest.mark.parametrize("variant", ["student", "stein"])
    def test_cache_replays(self, variant):
        for seed in range(8):
            actual, expected = _streams(variant, seed, warm=True)
            assert_streams_identical(actual, expected)
            # The warm pass must actually produce replays for the case to
            # mean anything: every record is served from the cache.
            assert all(r.from_cache or r.workload == 0 for r, _ in actual)

    def test_degraded_deadline_ties(self):
        saw_partial_tie = False
        for seed in range(10):
            actual, expected = _streams("deadline", seed, warm=False)
            assert_streams_identical(actual, expected)
            saw_partial_tie = saw_partial_tie or any(
                r.outcome.name == "TIE" and 0 < r.workload < 120
                for r, fresh in actual
                if fresh
            )
        assert saw_partial_tie, "deadline never degraded a pair to a tie"

    def test_fault_retries(self):
        for seed in range(10):
            actual, expected = _streams("faulty", seed, warm=False)
            assert_streams_identical(actual, expected)
