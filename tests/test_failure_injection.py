"""Robustness under hostile crowds and degenerate setups.

The confidence machinery must stay *correct* (never confidently wrong at a
high rate) when workers are noisy, careless, or uninformative — it may
only get slower or resolve ties.
"""

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.outcomes import Outcome
from repro.core.spr import spr_topk
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import CarelessWorkerNoise, GaussianNoise
from tests.conftest import make_latent_session


def careless_session(scores, careless_rate, seed=0, **config_kwargs):
    defaults = dict(confidence=0.95, budget=2000, min_workload=10, batch_size=10)
    defaults.update(config_kwargs)
    oracle = LatentScoreOracle(
        np.asarray(scores, dtype=float),
        CarelessWorkerNoise(sigma=1.0, careless_rate=careless_rate, spread=6.0),
    )
    return CrowdSession(oracle, ComparisonConfig(**defaults), seed=seed)


class TestCarelessWorkers:
    def test_contamination_increases_workload_not_errors(self):
        clean_w, dirty_w = [], []
        clean_err = dirty_err = 0
        for seed in range(15):
            clean = careless_session([0.0, 1.0], 0.0, seed=seed)
            record = clean.compare(1, 0)
            clean_w.append(record.workload)
            clean_err += int(record.outcome is Outcome.RIGHT)

            dirty = careless_session([0.0, 1.0], 0.4, seed=seed)
            record = dirty.compare(1, 0)
            dirty_w.append(record.workload)
            dirty_err += int(record.outcome is Outcome.RIGHT)
        assert np.mean(dirty_w) > np.mean(clean_w)
        assert dirty_err <= 1  # confidence keeps confident errors rare

    def test_spr_survives_contamination(self):
        truth = set(range(20, 25))
        hits = 0
        for seed in range(5):
            session = careless_session(np.linspace(0, 12, 25).tolist(), 0.3, seed=seed)
            result = spr_topk(session, list(range(25)), 5)
            hits += len(truth & set(result.topk))
        assert hits / 25 >= 0.7  # mean precision stays high under attack


class TestDegenerateOracles:
    def test_all_items_identical_yields_ties_everywhere(self):
        session = make_latent_session([1.0] * 6, sigma=1.0, budget=60)
        result = spr_topk(session, list(range(6)), 2)
        # any 2 items are a correct answer; the query must still terminate
        assert len(result.topk) == 2

    def test_zero_noise_perfect_workers(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0], sigma=0.0)
        result = spr_topk(session, [0, 1, 2, 3], 2)
        assert list(result.topk) == [3, 2]
        # every comparison decides right at the cold-start minimum
        assert session.total_cost <= 3 * 2 * 4

    def test_extreme_noise_respects_budget(self):
        session = make_latent_session([0.0, 0.01], sigma=50.0, budget=100)
        record = session.compare(1, 0)
        assert record.outcome is Outcome.TIE
        assert record.workload == 100

    def test_two_items(self):
        session = make_latent_session([0.0, 5.0], sigma=0.5)
        result = spr_topk(session, [0, 1], 1)
        assert list(result.topk) == [1]


class TestConfidenceContract:
    @pytest.mark.parametrize("confidence", [0.8, 0.95])
    def test_confident_error_rate_within_alpha(self, confidence):
        """Across many decided comparisons of a true-positive pair, the
        wrong-verdict rate must stay within alpha (the §3.1 guarantee)."""
        errors = decided = 0
        for seed in range(120):
            session = make_latent_session(
                [0.0, 0.45], sigma=1.0, seed=seed,
                confidence=confidence, budget=3000, min_workload=30,
            )
            record = session.compare(1, 0)
            if record.outcome is Outcome.TIE:
                continue
            decided += 1
            errors += int(record.outcome is Outcome.RIGHT)
        assert decided > 60
        # allow slack for the sequential (repeated-look) setting
        assert errors / decided <= (1 - confidence) * 1.5 + 0.02
