"""Baseline top-k algorithms: correctness on clean oracles, accounting."""

import numpy as np
import pytest

from repro.algorithms import (
    crowdbt_topk,
    heapsort_topk,
    hybrid_spr_topk,
    hybrid_topk,
    infimum_estimate,
    pbr_topk,
    quickselect_topk,
    spr_adapter,
    tournament_topk,
)
from repro.algorithms.crowdbt import fit_btl_scores
from repro.algorithms.infimum import infimum_pairs
from repro.errors import AlgorithmError
from tests.conftest import make_items, make_latent_session

SCORES = [float(i) for i in range(24)]
TRUE_TOP5 = [23, 22, 21, 20, 19]


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.3, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


CONFIDENCE_AWARE = [
    ("spr", spr_adapter),
    ("tournament", tournament_topk),
    ("heapsort", heapsort_topk),
    ("quickselect", quickselect_topk),
    ("pbr", pbr_topk),
]


class TestConfidenceAwareCorrectness:
    @pytest.mark.parametrize("name,algorithm", CONFIDENCE_AWARE)
    def test_exact_on_clean_oracle(self, name, algorithm):
        session = clean_session()
        outcome = algorithm(session, list(range(24)), 5)
        assert list(outcome.topk) == TRUE_TOP5, name
        assert outcome.method == name

    @pytest.mark.parametrize("name,algorithm", CONFIDENCE_AWARE)
    def test_accounting_matches_session(self, name, algorithm):
        session = clean_session(seed=3)
        outcome = algorithm(session, list(range(24)), 5)
        assert outcome.cost == session.total_cost
        assert outcome.rounds == session.total_rounds
        assert outcome.cost > 0

    @pytest.mark.parametrize("name,algorithm", CONFIDENCE_AWARE)
    def test_k_equals_one(self, name, algorithm):
        session = clean_session(seed=5)
        outcome = algorithm(session, list(range(24)), 1)
        assert list(outcome.topk) == [23]

    @pytest.mark.parametrize("name,algorithm", CONFIDENCE_AWARE)
    def test_validates_inputs(self, name, algorithm):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            algorithm(session, [1, 1], 1)
        with pytest.raises(AlgorithmError):
            algorithm(session, [1, 2], 5)

    @pytest.mark.parametrize("name,algorithm", CONFIDENCE_AWARE)
    def test_noisy_oracle_good_recall(self, name, algorithm):
        session = make_latent_session(
            np.linspace(0, 8, 24), sigma=1.0, seed=7,
            min_workload=10, budget=400, batch_size=10,
        )
        outcome = algorithm(session, list(range(24)), 5)
        assert len(set(outcome.topk) & set(TRUE_TOP5)) >= 4


class TestTournamentSpecifics:
    def test_later_items_found_via_direct_losers(self):
        session = clean_session(seed=11)
        outcome = tournament_topk(session, list(range(24)), 3)
        assert list(outcome.topk) == [23, 22, 21]

    def test_latency_beats_heapsort(self):
        tour = clean_session(seed=2)
        tournament_topk(tour, list(range(24)), 5)
        heap = clean_session(seed=2)
        heapsort_topk(heap, list(range(24)), 5)
        assert tour.total_rounds < heap.total_rounds


class TestQuickselectSpecifics:
    def test_ties_travel_with_pivot(self):
        # Two indistinguishable items around the boundary must not break
        # the selection; with budget exhausted they form the pivot block.
        session = make_latent_session(
            [0.0, 1.0, 2.0, 3.0, 3.0, 5.0, 6.0], sigma=1.0,
            min_workload=5, budget=50, batch_size=10, seed=3,
        )
        outcome = quickselect_topk(session, list(range(7)), 3)
        assert len(outcome.topk) == 3
        assert set(outcome.topk) <= {3, 4, 5, 6}


class TestInfimum:
    def test_pair_set_matches_lemma1(self, five_items):
        pairs = infimum_pairs(five_items, 2)
        order = five_items.true_order.tolist()
        assert pairs[0] == (order[0], order[1])  # the k-1 chain
        assert set(pairs[1:]) == {(order[1], j) for j in order[2:]}

    def test_cost_below_every_algorithm(self):
        items = make_items(SCORES)
        baseline_costs = []
        for _, algorithm in CONFIDENCE_AWARE:
            session = clean_session(seed=13)
            baseline_costs.append(algorithm(session, list(range(24)), 5).cost)
        session = clean_session(seed=13)
        infimum = infimum_estimate(session, items, 5)
        assert infimum.cost <= min(baseline_costs)

    def test_returns_ground_truth(self):
        items = make_items(SCORES)
        session = clean_session()
        outcome = infimum_estimate(session, items, 5)
        assert list(outcome.topk) == TRUE_TOP5

    def test_validates_k(self, five_items):
        with pytest.raises(AlgorithmError):
            infimum_pairs(five_items, 0)


class TestPBRSpecifics:
    def test_memberships_decided_on_clean_data(self):
        session = clean_session(seed=17)
        outcome = pbr_topk(session, list(range(24)), 5)
        assert outcome.extras["decided_members"] == 5
        assert outcome.extras["decided_out"] == 19

    def test_costs_more_than_spr(self):
        pbr_session = clean_session(seed=19)
        pbr_cost = pbr_topk(pbr_session, list(range(24)), 5).cost
        spr_session = clean_session(seed=19)
        spr_cost = spr_adapter(spr_session, list(range(24)), 5).cost
        assert pbr_cost > spr_cost

    def test_single_item(self):
        session = clean_session()
        outcome = pbr_topk(session, [3], 1)
        assert outcome.topk == (3,)
        assert outcome.cost == 0

    def test_window_parameter(self):
        # A small window still decides the correct member *set*; the order
        # within the set is Copeland-heuristic and may vary because lazy
        # scheduling races different pair subsets.
        session = clean_session(seed=23)
        outcome = pbr_topk(session, list(range(24)), 5, window=4)
        assert set(outcome.topk) == set(TRUE_TOP5)


class TestCrowdBT:
    def test_btl_fit_recovers_order(self):
        # Ground-truth BTL scores 3 > 2 > 1 > 0 with heavy vote counts.
        rng = np.random.default_rng(0)
        theta_true = np.array([0.0, 1.0, 2.0, 3.0])
        counts = np.zeros((4, 4))
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                p = 1 / (1 + np.exp(theta_true[j] - theta_true[i]))
                counts[i, j] = rng.binomial(400, p)
                counts[j, i] = 400 - counts[i, j]
        theta = fit_btl_scores(counts)
        assert list(np.argsort(-theta)) == [3, 2, 1, 0]

    def test_btl_validates(self):
        with pytest.raises(AlgorithmError):
            fit_btl_scores(np.zeros((2, 3)))
        with pytest.raises(AlgorithmError):
            fit_btl_scores(-np.ones((2, 2)))

    def test_budget_is_spent_exactly(self):
        session = clean_session(seed=29)
        outcome = crowdbt_topk(session, list(range(24)), 5, budget=4000)
        assert outcome.cost == 4000

    def test_recovers_topk_with_generous_budget(self):
        session = clean_session(seed=29)
        outcome = crowdbt_topk(session, list(range(24)), 5, budget=20_000)
        assert set(outcome.topk) == set(TRUE_TOP5)

    def test_budget_validated(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            crowdbt_topk(session, list(range(24)), 5, budget=0)


class TestHybrid:
    def test_budget_respected(self):
        session = clean_session(seed=31)
        outcome = hybrid_topk(session, list(range(24)), 5, budget=5000)
        assert outcome.cost <= 5000

    def test_recovers_topk(self):
        session = clean_session(seed=31)
        outcome = hybrid_topk(session, list(range(24)), 5, budget=10_000)
        assert set(outcome.topk) == set(TRUE_TOP5)

    def test_budget_too_small_rejected(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            hybrid_topk(session, list(range(24)), 5, budget=10)

    def test_requires_rating_oracle(self):
        from repro.crowd.oracle import RecordDatabaseOracle
        from repro.crowd.session import CrowdSession
        from repro.config import ComparisonConfig

        oracle = RecordDatabaseOracle({(0, 1): np.array([0.5, 0.5, -0.5])})
        session = CrowdSession(
            oracle, ComparisonConfig(min_workload=2, budget=50), seed=0
        )
        with pytest.raises(AlgorithmError):
            hybrid_topk(session, [0, 1], 1, budget=100)

    def test_hybrid_spr_beats_plain_spr_cost(self):
        # The filter pays off once the pruned partition outweighs the
        # per-item grading overhead — i.e. on larger, noisier inputs.
        scores = np.linspace(0.0, 10.0, 80).tolist()
        def session(seed):
            return make_latent_session(
                scores, sigma=1.5, seed=seed,
                min_workload=10, budget=400, batch_size=10,
            )
        hybrid_cost = hybrid_spr_topk(
            session(37), list(range(80)), 5, votes_per_item=5
        ).cost
        spr_cost = spr_adapter(session(37), list(range(80)), 5).cost
        assert hybrid_cost < spr_cost

    def test_hybrid_spr_exact_on_clean_oracle(self):
        session = clean_session(seed=37)
        outcome = hybrid_spr_topk(session, list(range(24)), 5, votes_per_item=10)
        assert list(outcome.topk) == TRUE_TOP5


class TestFullSort:
    def test_exact_on_clean_oracle(self):
        from repro.algorithms import fullsort_topk

        session = clean_session(seed=41)
        outcome = fullsort_topk(session, list(range(24)), 5)
        assert list(outcome.topk) == TRUE_TOP5
        assert outcome.extras["full_order_length"] == 24

    def test_costs_more_than_spr_under_noise(self):
        # On a noiseless toy both are cold-start-floor-dominated; with
        # realistic noise the full order must resolve every adjacent pair —
        # exactly the comparisons top-k pruning exists to avoid.
        from repro.algorithms import fullsort_topk, spr_adapter

        scores = np.linspace(0, 8, 24).tolist()
        full = make_latent_session(
            scores, sigma=1.0, seed=43, min_workload=5, budget=200, batch_size=10
        )
        full_cost = fullsort_topk(full, list(range(24)), 5).cost
        spr = make_latent_session(
            scores, sigma=1.0, seed=43, min_workload=5, budget=200, batch_size=10
        )
        spr_cost = spr_adapter(spr, list(range(24)), 5).cost
        assert full_cost > 1.5 * spr_cost

    def test_registered_in_harness(self):
        from repro.algorithms import ALGORITHMS

        assert "fullsort" in ALGORITHMS
