"""Checkpoint/resume: atomic persistence and bit-for-bit continuation.

The contract under test (docs/robustness.md): ``CrowdSession.checkpoint``
persists judgment cache, RNG state, ledgers and in-flight racing state
atomically; a session restored from that file — even in a *fresh
process* — finishes the query with the identical top-k at the identical
total cost, re-purchasing zero microtasks.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import ComparisonConfig, FaultPolicy, ResiliencePolicy
from repro.core.spr import resume_spr_topk, spr_topk
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import BudgetExhaustedError
from repro.persistence import load_checkpoint, save_checkpoint
from tests.conftest import make_latent_session

REPO_ROOT = Path(__file__).resolve().parent.parent


def fresh_oracle(n=20, seed=13, sigma=0.8):
    scores = np.random.default_rng(seed).normal(size=n) * 3.0
    return LatentScoreOracle(scores, GaussianNoise(sigma))


def fresh_session(**kwargs):
    # Explicit zero-fault policy: these expectations must not shift when
    # the CI fault leg exports CROWD_TOPK_FAULT_RATE.
    config = ComparisonConfig(
        confidence=0.95, budget=400, min_workload=2, batch_size=10,
        resilience=ResiliencePolicy(),
    )
    return CrowdSession(fresh_oracle(), config, seed=5, **kwargs)


class TestPersistenceRoundtrip:
    def test_state_and_cache_survive(self, tmp_path):
        session = make_latent_session([0.0, 2.0, 4.0], seed=1)
        session.compare(2, 0)
        session.compare(1, 0)
        path = tmp_path / "session.ckpt"
        save_checkpoint(session.checkpoint_state(), session.cache, path)
        state, cache = load_checkpoint(path)
        assert state["rng_state"] == session.rng.bit_generator.state
        assert state["cost"]["microtasks"] == session.cost.microtasks
        assert state["latency"]["rounds"] == session.latency.rounds
        assert cache.total_samples == session.cache.total_samples
        for (i, j) in ((2, 0), (1, 0)):
            np.testing.assert_array_equal(cache.bag(i, j), session.cache.bag(i, j))

    def test_no_tmp_file_left_behind(self, tmp_path):
        session = make_latent_session([0.0, 2.0], seed=1)
        session.compare(1, 0)
        path = tmp_path / "session.ckpt"
        session.checkpoint(path)
        session.checkpoint(path)  # overwrite goes through the same rename
        leftovers = [p for p in tmp_path.iterdir() if p.name != "session.ckpt"]
        assert leftovers == []

    def test_failed_write_leaves_old_checkpoint_intact(self, tmp_path):
        session = make_latent_session([0.0, 2.0], seed=1)
        session.compare(1, 0)
        path = tmp_path / "session.ckpt"
        session.checkpoint(path)
        before = path.read_bytes()
        with pytest.raises(TypeError):
            # Unserializable state: the write must fail before the rename,
            # so the previous checkpoint file stays valid.
            save_checkpoint({"bad": object()}, session.cache, path)
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["session.ckpt"]

    def test_checkpoint_state_carries_config_and_providers(self):
        session = fresh_session()
        session.register_state_provider("probe", lambda: {"value": 41})
        state = session.checkpoint_state()
        assert state["config"]["confidence"] == pytest.approx(0.95)
        assert state["config"]["resilience"]["fault"]["timeout_rate"] == 0.0
        assert state["query"]["probe"] == {"value": 41}

    def test_provider_keys_are_exclusive(self):
        session = fresh_session()
        assert session.register_state_provider("spr", lambda: {}) is True
        # A nested/recursive query must not steal the outer query's slot.
        assert session.register_state_provider("spr", lambda: {}) is False
        session.unregister_state_provider("spr")
        assert session.register_state_provider("spr", lambda: {}) is True


class TestCadence:
    def test_maybe_checkpoint_respects_every(self, tmp_path):
        session = make_latent_session([0.0, 3.0], seed=2)
        session.enable_checkpoints(tmp_path / "c.ckpt", every=10_000)
        assert session.maybe_checkpoint() is False  # no rounds elapsed yet
        session.compare(1, 0)
        assert session.maybe_checkpoint() is False  # cadence not reached
        session.charge_rounds(10_000)
        assert session.maybe_checkpoint() is True
        assert (tmp_path / "c.ckpt").exists()


class TestRestoreInProcess:
    def test_killed_query_resumes_to_identical_result(self, tmp_path):
        baseline = fresh_session()
        expected = spr_topk(baseline, list(range(20)), 4)

        path = tmp_path / "kill.ckpt"
        killed = fresh_session(max_total_cost=expected.cost // 2)
        killed.enable_checkpoints(path, every=1)
        with pytest.raises(BudgetExhaustedError):
            spr_topk(killed, list(range(20)), 4)
        assert path.exists()

        restored = CrowdSession.restore(path, fresh_oracle())
        restored.cost.ceiling = None  # the kill was the ceiling, lift it
        result = resume_spr_topk(restored)
        assert result.topk == expected.topk
        assert restored.total_cost == baseline.total_cost
        assert restored.total_rounds == baseline.total_rounds
        # Zero re-purchased microtasks: every charged task is in the cache
        # exactly once, so spent == cached just like in the baseline run.
        assert restored.cache.total_samples == restored.cost.microtasks
        assert restored.cache.total_samples == baseline.cache.total_samples

    def test_resume_is_bit_exact_under_faults(self, tmp_path):
        resilience = ResiliencePolicy(
            fault=FaultPolicy(
                timeout_rate=0.1, loss_rate=0.05, duplicate_rate=0.05, seed=3
            )
        )
        config = ComparisonConfig(
            confidence=0.95, budget=400, min_workload=2, batch_size=10,
            resilience=resilience,
        )
        baseline = CrowdSession(fresh_oracle(), config, seed=5)
        expected = spr_topk(baseline, list(range(20)), 4)

        path = tmp_path / "faulty.ckpt"
        killed = CrowdSession(
            fresh_oracle(), config, seed=5, max_total_cost=expected.cost // 2
        )
        killed.enable_checkpoints(path, every=1)
        with pytest.raises(BudgetExhaustedError):
            spr_topk(killed, list(range(20)), 4)

        restored = CrowdSession.restore(path, fresh_oracle())
        restored.cost.ceiling = None
        result = resume_spr_topk(restored)
        assert result.topk == expected.topk
        assert restored.total_cost == baseline.total_cost

    def test_restore_without_resumable_query_raises(self, tmp_path):
        from repro.errors import AlgorithmError

        session = make_latent_session([0.0, 2.0], seed=0)
        session.compare(1, 0)
        path = tmp_path / "bare.ckpt"
        session.checkpoint(path)
        restored = CrowdSession.restore(path, fresh_oracle())
        with pytest.raises(AlgorithmError):
            resume_spr_topk(restored)


#: Driver used by the fresh-process test below.  Three modes share one
#: deterministic query (seed-pinned oracle and session) so the parent test
#: can diff their JSON outputs.
_DRIVER = """
import json, sys
import numpy as np
from repro.config import ComparisonConfig
from repro.core.spr import resume_spr_topk, spr_topk
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import BudgetExhaustedError

mode, path = sys.argv[1], sys.argv[2]

def fresh_oracle():
    scores = np.random.default_rng(13).normal(size=20) * 3.0
    return LatentScoreOracle(scores, GaussianNoise(0.8))

config = ComparisonConfig(
    confidence=0.95, budget=400, min_workload=2, batch_size=10
)

if mode == "baseline":
    session = CrowdSession(fresh_oracle(), config, seed=5)
    result = spr_topk(session, list(range(20)), 4)
    print(json.dumps({
        "topk": list(result.topk),
        "cost": session.total_cost,
        "rounds": session.total_rounds,
        "cached": session.cache.total_samples,
    }))
elif mode == "kill":
    ceiling = int(sys.argv[3])
    session = CrowdSession(fresh_oracle(), config, seed=5, max_total_cost=ceiling)
    session.enable_checkpoints(path, every=1)
    try:
        spr_topk(session, list(range(20)), 4)
    except BudgetExhaustedError:
        print("killed")
        sys.exit(0)
    print("never tripped")
    sys.exit(1)
elif mode == "resume":
    session = CrowdSession.restore(path, fresh_oracle())
    session.cost.ceiling = None
    result = resume_spr_topk(session)
    print(json.dumps({
        "topk": list(result.topk),
        "cost": session.total_cost,
        "rounds": session.total_rounds,
        "cached": session.cache.total_samples,
    }))
"""


def _run_driver(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("CROWD_TOPK_FAULT_RATE", None)  # the query must be reproducible
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, *map(str, argv)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestFreshProcessResume:
    def test_kill_and_resume_across_processes(self, tmp_path):
        """The ISSUE's flagship scenario: checkpoint mid-partition, die,
        restore in a brand-new interpreter, finish identically."""
        path = tmp_path / "xproc.ckpt"
        baseline = json.loads(_run_driver("baseline", path))
        _run_driver("kill", path, max(baseline["cost"] // 2, 1))
        assert path.exists()
        resumed = json.loads(_run_driver("resume", path))
        assert resumed["topk"] == baseline["topk"]
        assert resumed["cost"] == baseline["cost"]
        assert resumed["rounds"] == baseline["rounds"]
        # Zero re-purchased microtasks: the resumed run's cache holds
        # exactly the baseline's judgments, and everything charged is
        # cached exactly once.
        assert resumed["cached"] == baseline["cached"]
        assert resumed["cached"] == resumed["cost"]
