"""Judgment cache: sign canonicalization, growth, moments."""

import numpy as np
import pytest

from repro.core.cache import JudgmentCache


class TestSymmetry:
    def test_bag_flips_sign_with_orientation(self):
        cache = JudgmentCache()
        cache.append(1, 2, np.array([0.5, -0.25]))
        assert cache.bag(1, 2).tolist() == [0.5, -0.25]
        assert cache.bag(2, 1).tolist() == [-0.5, 0.25]

    def test_both_orientations_share_one_bag(self):
        cache = JudgmentCache()
        cache.append(3, 7, np.array([1.0]))
        cache.append(7, 3, np.array([2.0]))
        assert cache.bag(3, 7).tolist() == [1.0, -2.0]
        assert cache.count(7, 3) == 2

    def test_self_pair_rejected(self):
        cache = JudgmentCache()
        with pytest.raises(ValueError):
            cache.bag(4, 4)
        with pytest.raises(ValueError):
            cache.append(4, 4, np.array([1.0]))


class TestStorage:
    def test_empty_bag(self):
        cache = JudgmentCache()
        assert cache.bag(0, 1).size == 0
        assert cache.count(0, 1) == 0

    def test_append_empty_is_noop(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([]))
        assert cache.total_samples == 0
        assert cache.pair_count == 0

    def test_growth_beyond_initial_capacity(self, rng):
        cache = JudgmentCache()
        chunks = [rng.normal(size=17) for _ in range(20)]
        for chunk in chunks:
            cache.append(0, 1, chunk)
        expected = np.concatenate(chunks)
        assert np.allclose(cache.bag(0, 1), expected)
        assert cache.count(0, 1) == 17 * 20

    def test_totals(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.ones(3))
        cache.append(2, 5, np.ones(4))
        assert cache.total_samples == 7
        assert cache.pair_count == 2
        assert sorted(cache.pairs()) == [(0, 1), (2, 5)]

    def test_clear(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.ones(3))
        cache.clear()
        assert cache.total_samples == 0
        assert cache.bag(0, 1).size == 0


class TestMoments:
    def test_moments_of_empty_bag(self):
        cache = JudgmentCache()
        n, mean, var = cache.moments(0, 1)
        assert n == 0
        assert np.isnan(mean)
        assert np.isnan(var)

    def test_moments_values(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0, 2.0, 3.0]))
        n, mean, var = cache.moments(0, 1)
        assert n == 3
        assert mean == pytest.approx(2.0)
        assert var == pytest.approx(1.0)

    def test_moments_respect_orientation(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0, 2.0]))
        _, mean_fwd, _ = cache.moments(0, 1)
        _, mean_rev, _ = cache.moments(1, 0)
        assert mean_fwd == pytest.approx(-mean_rev)

    def test_single_sample_variance_nan(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0]))
        n, mean, var = cache.moments(0, 1)
        assert (n, mean) == (1, 1.0)
        assert np.isnan(var)
