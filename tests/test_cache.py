"""Judgment cache: sign canonicalization, growth, moments."""

import numpy as np
import pytest

from repro.core.cache import JudgmentCache


class TestSymmetry:
    def test_bag_flips_sign_with_orientation(self):
        cache = JudgmentCache()
        cache.append(1, 2, np.array([0.5, -0.25]))
        assert cache.bag(1, 2).tolist() == [0.5, -0.25]
        assert cache.bag(2, 1).tolist() == [-0.5, 0.25]

    def test_both_orientations_share_one_bag(self):
        cache = JudgmentCache()
        cache.append(3, 7, np.array([1.0]))
        cache.append(7, 3, np.array([2.0]))
        assert cache.bag(3, 7).tolist() == [1.0, -2.0]
        assert cache.count(7, 3) == 2

    def test_self_pair_rejected(self):
        cache = JudgmentCache()
        with pytest.raises(ValueError):
            cache.bag(4, 4)
        with pytest.raises(ValueError):
            cache.append(4, 4, np.array([1.0]))


class TestStorage:
    def test_empty_bag(self):
        cache = JudgmentCache()
        assert cache.bag(0, 1).size == 0
        assert cache.count(0, 1) == 0

    def test_append_empty_is_noop(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([]))
        assert cache.total_samples == 0
        assert cache.pair_count == 0

    def test_growth_beyond_initial_capacity(self, rng):
        cache = JudgmentCache()
        chunks = [rng.normal(size=17) for _ in range(20)]
        for chunk in chunks:
            cache.append(0, 1, chunk)
        expected = np.concatenate(chunks)
        assert np.allclose(cache.bag(0, 1), expected)
        assert cache.count(0, 1) == 17 * 20

    def test_totals(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.ones(3))
        cache.append(2, 5, np.ones(4))
        assert cache.total_samples == 7
        assert cache.pair_count == 2
        assert sorted(cache.pairs()) == [(0, 1), (2, 5)]

    def test_clear(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.ones(3))
        cache.clear()
        assert cache.total_samples == 0
        assert cache.bag(0, 1).size == 0


class TestMoments:
    def test_moments_of_empty_bag(self):
        cache = JudgmentCache()
        n, mean, var = cache.moments(0, 1)
        assert n == 0
        assert np.isnan(mean)
        assert np.isnan(var)

    def test_moments_values(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0, 2.0, 3.0]))
        n, mean, var = cache.moments(0, 1)
        assert n == 3
        assert mean == pytest.approx(2.0)
        assert var == pytest.approx(1.0)

    def test_moments_respect_orientation(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0, 2.0]))
        _, mean_fwd, _ = cache.moments(0, 1)
        _, mean_rev, _ = cache.moments(1, 0)
        assert mean_fwd == pytest.approx(-mean_rev)

    def test_single_sample_variance_nan(self):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0]))
        n, mean, var = cache.moments(0, 1)
        assert (n, mean) == (1, 1.0)
        assert np.isnan(var)


class TestBatchedAppend:
    """``append_rows`` must equal per-row ``append`` bit for bit — buffers,
    running moments (Σv, Σv²) and totals, across orientations and growth."""

    def _equivalent(self, lefts, rights, values, counts):
        batched, sequential = JudgmentCache(), JudgmentCache()
        batched.append_rows(lefts, rights, values, counts)
        for row, count in enumerate(counts.tolist()):
            sequential.append(
                int(lefts[row]), int(rights[row]), values[row, :count]
            )
        assert batched.total_samples == sequential.total_samples
        assert sorted(batched._bags) == sorted(sequential._bags)
        for key, bag in batched._bags.items():
            other = sequential._bags[key]
            assert bag.view().tobytes() == other.view().tobytes()
            # Exact float equality: the grouped reductions must reproduce
            # numpy's per-row pairwise summation bitwise.
            assert bag.s1 == other.s1
            assert bag.s2 == other.s2

    def test_mixed_orientations_and_ragged_counts(self, rng):
        lefts = np.array([0, 5, 2, 9, 4, 7], dtype=np.int64)
        rights = np.array([1, 3, 8, 2, 0, 6], dtype=np.int64)
        values = rng.normal(size=(6, 10))
        counts = np.array([10, 3, 0, 7, 3, 10], dtype=np.int64)
        self._equivalent(lefts, rights, values, counts)

    def test_repeated_pairs_accumulate_in_row_order(self, rng):
        # The same canonical pair appears three times, twice flipped.
        lefts = np.array([2, 6, 6, 2], dtype=np.int64)
        rights = np.array([6, 2, 2, 6], dtype=np.int64)
        values = rng.normal(size=(4, 5))
        counts = np.array([5, 4, 2, 5], dtype=np.int64)
        self._equivalent(lefts, rights, values, counts)

    def test_growth_beyond_initial_capacity(self, rng):
        cache = JudgmentCache()
        reference = JudgmentCache()
        for _ in range(12):
            values = rng.normal(size=(2, 40))
            counts = np.array([40, 37], dtype=np.int64)
            lefts = np.array([0, 1], dtype=np.int64)
            rights = np.array([1, 0], dtype=np.int64)
            cache.append_rows(lefts, rights, values, counts)
            reference.append(0, 1, values[0])
            reference.append(1, 0, values[1, :37])
        assert cache.bag(0, 1).tobytes() == reference.bag(0, 1).tobytes()
        assert cache.total_samples == reference.total_samples

    def test_all_zero_counts_is_noop(self):
        cache = JudgmentCache()
        cache.append_rows(
            np.array([0, 1], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
            np.zeros((2, 4)),
            np.zeros(2, dtype=np.int64),
        )
        assert cache.total_samples == 0
        assert cache.pair_count == 0

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            JudgmentCache().append_rows(
                np.array([3], dtype=np.int64),
                np.array([3], dtype=np.int64),
                np.ones((1, 2)),
                np.array([2], dtype=np.int64),
            )

    def test_empty_batch_is_noop(self):
        cache = JudgmentCache()
        cache.append_rows(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty((0, 4)),
            np.empty(0, dtype=np.int64),
        )
        assert cache.total_samples == 0


class TestDeferredRows:
    """``defer_rows`` queues; any read drains; the result must equal the
    same batches applied eagerly, bit for bit."""

    def _batch(self, rng, rows=3, width=6):
        lefts = rng.integers(0, 5, size=rows).astype(np.int64)
        rights = (lefts + 1 + rng.integers(0, 4, size=rows)).astype(np.int64)
        values = rng.normal(size=(rows, width))
        counts = rng.integers(0, width + 1, size=rows).astype(np.int64)
        return lefts, rights, values, counts

    def test_matches_eager_append_rows_bitwise(self, rng):
        deferred, eager = JudgmentCache(), JudgmentCache()
        for _ in range(7):
            batch = self._batch(rng)
            deferred.defer_rows(*batch)
            eager.append_rows(*batch)
        deferred.settle()
        assert deferred.total_samples == eager.total_samples
        assert sorted(deferred._bags) == sorted(eager._bags)
        for key, bag in deferred._bags.items():
            other = eager._bags[key]
            assert bag.view().tobytes() == other.view().tobytes()
            assert bag.s1 == other.s1
            assert bag.s2 == other.s2

    def test_reads_drain_pending(self, rng):
        for read in (
            lambda c: c.bag(0, 1),
            lambda c: c.count(0, 1),
            lambda c: c.moments(0, 1),
            lambda c: c.total_samples,
            lambda c: c.pair_count,
            lambda c: c.pairs(),
            lambda c: c.bags_for(
                np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
            ),
        ):
            cache = JudgmentCache()
            cache.defer_rows(
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([[1.0, 2.0]]),
                np.array([2], dtype=np.int64),
            )
            read(cache)
            assert not cache._pending
            assert cache.count(0, 1) == 2

    def test_writes_drain_first_preserving_order(self, rng):
        deferred, eager = JudgmentCache(), JudgmentCache()
        deferred.defer_rows(
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([[1.0, 2.0, 3.0]]),
            np.array([3], dtype=np.int64),
        )
        deferred.append(1, 0, np.array([4.0]))  # drains, then appends
        eager.append(0, 1, np.array([1.0, 2.0, 3.0]))
        eager.append(1, 0, np.array([4.0]))
        assert deferred.bag(0, 1).tobytes() == eager.bag(0, 1).tobytes()

    def test_clear_cancels_pending(self):
        cache = JudgmentCache()
        cache.defer_rows(
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            np.array([[1.0]]),
            np.array([1], dtype=np.int64),
        )
        cache.clear()
        assert cache.total_samples == 0
        assert cache.bag(0, 1).size == 0

    def test_settle_on_empty_queue_is_noop(self):
        cache = JudgmentCache()
        cache.settle()
        assert cache.total_samples == 0


class TestBulkBags:
    def test_bags_for_matches_bag(self, rng):
        cache = JudgmentCache()
        cache.append(0, 1, np.array([1.0, -2.0]))
        cache.append(2, 3, np.array([0.5]))
        lefts = np.array([0, 1, 2, 4], dtype=np.int64)
        rights = np.array([1, 0, 3, 5], dtype=np.int64)
        bulk = cache.bags_for(lefts, rights)
        for got, (i, j) in zip(bulk, zip(lefts, rights)):
            assert got.tolist() == cache.bag(int(i), int(j)).tolist()
