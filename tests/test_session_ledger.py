"""Sessions, ledgers and forked judgment regimes."""

import numpy as np
import pytest

from repro.crowd.ledger import CostLedger, LatencyLedger
from repro.errors import BudgetExhaustedError
from tests.conftest import make_latent_session


class TestCostLedger:
    def test_charges_accumulate(self):
        ledger = CostLedger()
        ledger.charge(10)
        ledger.charge(5)
        assert ledger.microtasks == 15

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().charge(-1)

    def test_ceiling_enforced(self):
        ledger = CostLedger(ceiling=10)
        ledger.charge(10)
        with pytest.raises(BudgetExhaustedError):
            ledger.charge(1)

    def test_remaining(self):
        ledger = CostLedger(ceiling=10)
        ledger.charge(4)
        assert ledger.remaining == 6
        assert CostLedger().remaining is None

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge(5)
        ledger.begin_comparison()
        ledger.reset()
        assert ledger.microtasks == 0
        assert ledger.comparisons == 0


class TestLatencyLedger:
    def test_sequential_adds(self):
        ledger = LatencyLedger()
        ledger.add(3)
        ledger.add(2)
        assert ledger.rounds == 5

    def test_parallel_takes_max(self):
        ledger = LatencyLedger()
        ledger.add_parallel([3, 7, 2])
        assert ledger.rounds == 7

    def test_parallel_empty_group_is_free(self):
        ledger = LatencyLedger()
        ledger.add_parallel([])
        assert ledger.rounds == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyLedger().add(-1)


class TestSession:
    def test_compare_many_latency_is_max(self):
        session = make_latent_session(
            [0.0, 5.0, 0.2, 6.0], sigma=1.0, batch_size=5, seed=2
        )
        records = session.compare_many([(1, 0), (3, 2)])
        assert session.total_rounds == max(r.rounds for r in records)
        assert session.total_cost == sum(r.cost for r in records)

    def test_comparisons_counted(self, five_item_session):
        five_item_session.compare(1, 0)
        five_item_session.compare(2, 0)
        assert five_item_session.cost.comparisons == 2

    def test_session_ceiling_raises(self):
        session = make_latent_session([0.0, 0.1], sigma=2.0)
        session.cost.ceiling = 50
        with pytest.raises(BudgetExhaustedError):
            for _ in range(100):
                session.compare(0, 1)
                session.cache.clear()

    def test_fork_shares_ledgers(self, five_item_session):
        fork = five_item_session.fork(budget=100)
        fork.compare(4, 0)
        assert five_item_session.total_cost == fork.total_cost
        assert five_item_session.total_cost > 0

    def test_fork_with_config_change_keeps_cache(self, five_item_session):
        five_item_session.compare(4, 0)
        fork = five_item_session.fork(budget=500)
        record = fork.compare(4, 0)
        assert record.cost == 0  # served from the shared cache

    def test_fork_with_new_oracle_resets_cache(self, five_item_session):
        from repro.crowd.oracle import BinaryOracle

        five_item_session.compare(4, 0)
        fork = five_item_session.fork(
            oracle=BinaryOracle(five_item_session.oracle), estimator="hoeffding"
        )
        assert fork.cache is not five_item_session.cache
        assert fork.cache.total_samples == 0

    def test_moments_views_cache(self, five_item_session):
        record = five_item_session.compare(3, 0)
        n, mean, var = five_item_session.moments(3, 0)
        assert n == record.workload
        assert mean == pytest.approx(record.mean)

    def test_spent_snapshot(self, five_item_session):
        before = five_item_session.spent()
        five_item_session.compare(2, 1)
        cost, rounds = five_item_session.spent()
        assert cost > before[0]
        assert rounds >= before[1]

    def test_charge_passthrough(self, five_item_session):
        five_item_session.charge_cost(7)
        five_item_session.charge_rounds(3)
        assert five_item_session.total_cost == 7
        assert five_item_session.total_rounds == 3

    def test_deterministic_given_seed(self):
        a = make_latent_session([0.0, 1.0, 2.0], seed=42).compare(2, 0)
        b = make_latent_session([0.0, 1.0, 2.0], seed=42).compare(2, 0)
        assert a == b


class TestBatchedCharging:
    """The batched accounting twins equal their per-event counterparts."""

    def test_begin_comparisons_equals_n_begins(self):
        batched, sequential = CostLedger(), CostLedger()
        batched.begin_comparisons(7)
        for _ in range(7):
            sequential.begin_comparison()
        assert batched.comparisons == sequential.comparisons == 7

    def test_begin_comparisons_rejects_negative(self):
        with pytest.raises(ValueError):
            CostLedger().begin_comparisons(-1)

    def test_charge_many_equals_split_calls(self):
        batched = make_latent_session([0.0, 5.0], seed=1)
        split = make_latent_session([0.0, 5.0], seed=1)
        batched.charge_many(40, rounds=4)
        batched.charge_many(12)
        split.charge_cost(40)
        split.charge_rounds(4)
        split.charge_cost(12)
        assert batched.total_cost == split.total_cost == 52
        assert batched.total_rounds == split.total_rounds == 4

    def test_charge_many_ceiling_leaves_latency_untouched(self):
        session = make_latent_session([0.0, 5.0], seed=1)
        session.cost.ceiling = 10
        with pytest.raises(BudgetExhaustedError):
            session.charge_many(11, rounds=3)
        # Cost first: the ceiling fires before latency is billed, exactly
        # as charge_cost followed by charge_rounds would behave.
        assert session.total_rounds == 0
        assert session.total_cost == 11
