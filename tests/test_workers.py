"""Worker noise models."""

import numpy as np
import pytest

from repro.crowd.workers import CarelessWorkerNoise, GaussianNoise


class TestGaussianNoise:
    def test_moments(self, rng):
        noise = GaussianNoise(2.0).sample(20_000, rng)
        assert noise.mean() == pytest.approx(0.0, abs=0.05)
        assert noise.std() == pytest.approx(2.0, abs=0.05)

    def test_zero_sigma_is_silent(self, rng):
        assert np.all(GaussianNoise(0.0).sample(10, rng) == 0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)


class TestCarelessWorkerNoise:
    def test_contamination_fattens_tails(self, rng):
        honest = GaussianNoise(1.0).sample(50_000, rng)
        sloppy = CarelessWorkerNoise(
            sigma=1.0, careless_rate=0.3, spread=8.0
        ).sample(50_000, rng)
        assert np.abs(sloppy).max() > np.abs(honest).max()
        assert sloppy.std() > honest.std()

    def test_zero_rate_matches_gaussian_scale(self, rng):
        noise = CarelessWorkerNoise(sigma=1.5, careless_rate=0.0).sample(20_000, rng)
        assert noise.std() == pytest.approx(1.5, abs=0.05)

    def test_still_zero_mean(self, rng):
        noise = CarelessWorkerNoise(
            sigma=1.0, careless_rate=0.5, spread=5.0
        ).sample(50_000, rng)
        assert noise.mean() == pytest.approx(0.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            CarelessWorkerNoise(careless_rate=1.5)
        with pytest.raises(ValueError):
            CarelessWorkerNoise(spread=0.0)
        with pytest.raises(ValueError):
            CarelessWorkerNoise(sigma=-1.0)
