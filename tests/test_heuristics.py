"""Survey-grade heuristic baselines: Borda counting and ELO ratings."""

import numpy as np
import pytest

from repro.algorithms.heuristics import borda_topk, elo_topk
from repro.errors import AlgorithmError
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(16)]
TRUE_TOP4 = {15, 14, 13, 12}


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.5, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


@pytest.mark.parametrize("algorithm", [borda_topk, elo_topk])
class TestCommonBehaviour:
    def test_budget_is_spent_exactly(self, algorithm):
        session = clean_session(seed=1)
        outcome = algorithm(session, list(range(16)), 4, budget=3000)
        assert outcome.cost == 3000
        assert session.total_cost == 3000

    def test_recovers_topk_with_generous_budget(self, algorithm):
        session = clean_session(seed=1)
        outcome = algorithm(session, list(range(16)), 4, budget=20_000)
        assert set(outcome.topk) == TRUE_TOP4

    def test_small_budget_degrades_gracefully(self, algorithm):
        session = clean_session(seed=2)
        outcome = algorithm(session, list(range(16)), 4, budget=30)
        assert len(outcome.topk) == 4
        assert len(set(outcome.topk)) == 4

    def test_budget_validated(self, algorithm):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            algorithm(session, list(range(16)), 4, budget=0)

    def test_query_validated(self, algorithm):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            algorithm(session, [1, 1], 1, budget=100)

    def test_deterministic_given_seed(self, algorithm):
        a = algorithm(clean_session(seed=5), list(range(16)), 4, budget=2000)
        b = algorithm(clean_session(seed=5), list(range(16)), 4, budget=2000)
        assert a.topk == b.topk


class TestBordaSpecifics:
    def test_extras_report_coverage(self):
        session = clean_session(seed=3)
        outcome = borda_topk(session, list(range(16)), 4, budget=5000)
        assert outcome.extras["votes"] == 5000
        assert outcome.extras["min_appearances"] > 0

    def test_win_rate_not_raw_wins(self):
        # With uniform random pairing both normalizations agree in
        # expectation, but the implementation must not divide by zero when
        # an item never appears (tiny budgets).
        session = clean_session(seed=3)
        outcome = borda_topk(session, list(range(16)), 2, budget=5)
        assert len(outcome.topk) == 2


class TestEloSpecifics:
    def test_rating_spread_grows_with_budget(self):
        small = elo_topk(clean_session(seed=7), list(range(16)), 4, budget=100)
        large = elo_topk(clean_session(seed=7), list(range(16)), 4, budget=5000)
        assert (
            large.extras["rating_spread"] > small.extras["rating_spread"]
        )

    def test_parameters_validated(self):
        session = clean_session()
        with pytest.raises(AlgorithmError):
            elo_topk(session, list(range(16)), 2, budget=100, k_factor=0)
        with pytest.raises(AlgorithmError):
            elo_topk(session, list(range(16)), 2, budget=100, spread=-1)


class TestAgainstConfidenceAware:
    def test_heuristics_trail_spr_at_matched_budget(self):
        """The §6.5 story generalizes: at SPR's own budget the heuristics
        should not beat SPR's quality on a noisy instance."""
        from repro.algorithms import spr_adapter
        from repro.metrics import ndcg_at_k
        from tests.conftest import make_items

        scores = np.linspace(0.0, 6.0, 30)
        items = make_items(scores)

        def session(seed):
            return make_latent_session(
                scores.tolist(), sigma=1.5, seed=seed,
                min_workload=10, budget=400, batch_size=10,
            )

        spr = spr_adapter(session(11), list(range(30)), 5)
        spr_ndcg = ndcg_at_k(items, spr.topk, 5)
        borda = borda_topk(session(11), list(range(30)), 5, budget=spr.cost)
        elo = elo_topk(session(11), list(range(30)), 5, budget=spr.cost)
        assert ndcg_at_k(items, borda.topk, 5) <= spr_ndcg + 0.1
        assert ndcg_at_k(items, elo.topk, 5) <= spr_ndcg + 0.1
