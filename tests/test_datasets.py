"""Synthetic dataset generators: shapes, simulation-rule consistency."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    load_dataset,
    make_book,
    make_imdb,
    make_jester,
    make_peopleage,
    make_photo,
)
from repro.datasets.registry import DATASET_NAMES, clear_dataset_cache
from repro.errors import DatasetError


# Small generator settings so the whole file runs in seconds.
SMALL = {
    "imdb": dict(n_items=40, min_votes=5_000, max_votes=20_000),
    "book": dict(n_items=30),
    "jester": dict(n_items=20, n_users=500),
    "photo": dict(n_items=15),
    "peopleage": dict(n_items=20),
}


@pytest.fixture(params=list(SMALL))
def small_dataset(request) -> Dataset:
    return load_dataset(request.param, seed=1, **SMALL[request.param])


class TestCommonContract:
    def test_items_and_oracle_agree(self, small_dataset, rng):
        ids = small_dataset.items.ids
        draws = small_dataset.oracle.draw(int(ids[0]), int(ids[1]), 10, rng)
        assert draws.shape == (10,)
        assert np.all(np.isfinite(draws))

    def test_oracle_mean_tracks_ground_truth_order(self, small_dataset, rng):
        # Best vs worst item: the preference mean must favour the best.
        order = small_dataset.items.true_order
        best, worst = int(order[0]), int(order[-1])
        draws = small_dataset.oracle.draw(best, worst, 2000, rng)
        assert draws.mean() > 0

    def test_deterministic_generation(self, small_dataset):
        name = small_dataset.name
        clear_dataset_cache()
        again = load_dataset(name, seed=1, **SMALL[name])
        assert np.array_equal(again.items.scores, small_dataset.items.scores)

    def test_different_seeds_differ(self, small_dataset):
        name = small_dataset.name
        other = load_dataset(name, seed=2, **SMALL[name])
        assert not np.array_equal(other.items.scores, small_dataset.items.scores)

    def test_session_factory(self, small_dataset):
        from repro.crowd.faults import FaultInjector

        session = small_dataset.session(seed=0)
        oracle = session.oracle
        if isinstance(oracle, FaultInjector):  # CI fault leg auto-wraps
            oracle = oracle.base
        assert oracle is small_dataset.oracle

    def test_sample_items(self, small_dataset, rng):
        sub = small_dataset.sample_items(5, rng)
        assert len(sub) == 5
        assert small_dataset.sample_items(None) is small_dataset.items


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_NAMES) == {
            "imdb", "book", "jester", "photo", "peopleage", "synthetic",
        }

    def test_cache_returns_same_object(self):
        a = load_dataset("jester", seed=3, **SMALL["jester"])
        b = load_dataset("jester", seed=3, **SMALL["jester"])
        assert a is b

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("netflix")


class TestIMDb:
    def test_paper_scale_defaults(self):
        dataset = load_dataset("imdb")
        assert len(dataset) == 1225

    def test_weighted_rank_in_rating_range(self):
        dataset = load_dataset("imdb", seed=1, **SMALL["imdb"])
        assert np.all(dataset.items.scores > 1.0)
        assert np.all(dataset.items.scores < 10.0)

    def test_judgments_are_integer_star_differences(self, rng):
        dataset = load_dataset("imdb", seed=1, **SMALL["imdb"])
        draws = dataset.oracle.draw(0, 1, 100, rng)
        assert np.all(draws == np.round(draws))
        assert np.all(np.abs(draws) <= 9)

    def test_supports_rating(self):
        assert load_dataset("imdb", seed=1, **SMALL["imdb"]).oracle.supports_rating

    def test_validation(self):
        with pytest.raises(ValueError):
            make_imdb(n_items=1)
        with pytest.raises(ValueError):
            make_imdb(min_votes=100, max_votes=10)


class TestBook:
    def test_paper_scale_defaults(self):
        assert len(load_dataset("book")) == 537

    def test_noisier_than_imdb(self):
        # Book's tiny vote pools leave larger histogram-vs-model gaps; we
        # just sanity-check scores stay on the 0..10 scale.
        dataset = load_dataset("book", seed=1, **SMALL["book"])
        assert np.all(dataset.items.scores >= 0.0)
        assert np.all(dataset.items.scores <= 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_book(n_items=0)


class TestJester:
    def test_paper_scale_defaults(self):
        assert len(load_dataset("jester")) == 100

    def test_ratings_bounded(self, rng):
        dataset = load_dataset("jester", seed=1, **SMALL["jester"])
        ratings = dataset.oracle.rate(0, 500, rng)
        assert np.all(ratings >= -10.0)
        assert np.all(ratings <= 10.0)

    def test_ground_truth_is_mean_rating(self):
        dataset = load_dataset("jester", seed=1, **SMALL["jester"])
        for item in (0, 5, 13):
            assert dataset.items.score_of(item) == pytest.approx(
                dataset.oracle.mean_rating(item)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_jester(n_items=1)
        with pytest.raises(ValueError):
            make_jester(n_users=0)


class TestPhoto:
    def test_paper_scale_defaults(self):
        assert len(load_dataset("photo")) == 200

    def test_judgments_live_on_likert_support(self, rng):
        dataset = load_dataset("photo", seed=1, **SMALL["photo"])
        draws = dataset.oracle.draw(0, 1, 300, rng)
        levels = np.array([-7, -5, -3, -1, 1, 3, 5, 7]) / 7.0
        assert all(any(np.isclose(v, levels).tolist()) for v in draws)

    def test_record_pools_at_least_paper_minimum(self):
        dataset = load_dataset("photo", seed=1, **SMALL["photo"])
        assert dataset.oracle.record_count(0, 1) >= 10

    def test_no_rating_support(self):
        dataset = load_dataset("photo", seed=1, **SMALL["photo"])
        assert not dataset.oracle.supports_rating

    def test_validation(self):
        with pytest.raises(ValueError):
            make_photo(n_items=1)
        with pytest.raises(ValueError):
            make_photo(records_per_pair=0)


class TestPeopleAge:
    def test_paper_scale_defaults(self):
        assert len(load_dataset("peopleage")) == 100

    def test_top_items_are_youngest(self):
        dataset = load_dataset("peopleage", seed=1, **SMALL["peopleage"])
        best = int(dataset.items.true_top_k(1)[0])
        assert "aged 1" in dataset.items.label_of(best)

    def test_older_pairs_are_harder(self, rng):
        dataset = make_peopleage(seed=1, n_items=100)
        ages = {int(i): -dataset.items.score_of(int(i)) for i in dataset.items.ids}
        by_age = sorted(ages, key=ages.get)
        young_pair = (by_age[0], by_age[10])  # ages 1 vs 11
        old_pair = (by_age[60], by_age[70])  # ages 61 vs 71
        young_draws = dataset.oracle.draw(*young_pair, 2000, rng)
        old_draws = dataset.oracle.draw(*old_pair, 2000, rng)
        # same true age gap, but the old pair's signal-to-noise is worse
        assert abs(young_draws.mean()) / young_draws.std() > abs(
            old_draws.mean()
        ) / old_draws.std()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_peopleage(n_items=1)


class TestSynthetic:
    def test_distributions(self):
        from repro.datasets.synthetic import make_synthetic

        normal = make_synthetic(seed=1, n_items=50)
        uniform = make_synthetic(seed=1, n_items=50, distribution="uniform")
        assert len(normal) == len(uniform) == 50
        assert not np.array_equal(normal.items.scores, uniform.items.scores)

    def test_careless_rate_changes_oracle(self, rng):
        from repro.datasets.synthetic import make_synthetic

        honest = make_synthetic(seed=1, n_items=10, careless_rate=0.0)
        sloppy = make_synthetic(seed=1, n_items=10, careless_rate=0.5)
        order = honest.items.true_order
        a, b = int(order[0]), int(order[-1])
        honest_std = honest.oracle.draw(a, b, 3000, rng).std()
        sloppy_std = sloppy.oracle.draw(a, b, 3000, rng).std()
        assert sloppy_std > honest_std

    def test_validation(self):
        from repro.datasets.synthetic import make_synthetic

        with pytest.raises(ValueError):
            make_synthetic(n_items=1)
        with pytest.raises(ValueError):
            make_synthetic(score_spread=0.0)
        with pytest.raises(ValueError):
            make_synthetic(careless_rate=2.0)
        with pytest.raises(ValueError):
            make_synthetic(distribution="cauchy")

    def test_rating_supported_for_hybrid(self):
        from repro.datasets.synthetic import make_synthetic

        assert make_synthetic(seed=1, n_items=10).oracle.supports_rating
