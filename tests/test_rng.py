"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.rng import make_rng, spawn, spawn_many, stream


def test_make_rng_from_int_is_deterministic():
    assert make_rng(42).random() == make_rng(42).random()


def test_make_rng_passes_generators_through():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_make_rng_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_spawn_many_children_are_independent():
    children = spawn_many(make_rng(7), 3)
    draws = [child.random() for child in children]
    assert len(set(draws)) == 3


def test_spawn_many_deterministic_given_parent_seed():
    a = [g.random() for g in spawn_many(make_rng(7), 3)]
    b = [g.random() for g in spawn_many(make_rng(7), 3)]
    assert a == b


def test_spawn_advances_parent_state():
    parent = make_rng(7)
    first = spawn(parent).random()
    second = spawn(parent).random()
    assert first != second


def test_spawn_many_rejects_negative():
    with pytest.raises(ValueError):
        spawn_many(make_rng(0), -1)


def test_stream_yields_distinct_generators():
    gen = stream(make_rng(3))
    draws = {next(gen).random() for _ in range(5)}
    assert len(draws) == 5
