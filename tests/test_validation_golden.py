"""Unit tests for the golden-trace harness.

``diff_traces`` is exercised on handcrafted traces (tolerance, missing
fields, counter drift); the suite itself is exercised against temporary
directories for the update / missing-file paths, and against the
checked-in ``tests/golden/`` pins — which is the actual regression gate:
any behavioral change to the comparison engine shows up as a named diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry, use_registry
from repro.validation import (
    GoldenTrace,
    default_golden_cases,
    diff_traces,
    run_golden_suite,
)
from repro.validation.golden import load_trace, save_trace, trace_path

GOLDEN_DIR = Path(__file__).parent / "golden"


def _trace(**overrides) -> GoldenTrace:
    base = dict(
        name="toy",
        records=(
            {"left": 0, "right": 1, "outcome": "LEFT", "workload": 10,
             "cost": 10, "rounds": 1, "mean": 0.5, "std": 0.25},
        ),
        summary={"cost": 10, "rounds": 1},
        counters={"crowd_comparisons_total": 1},
        meta={"seed": 1},
    )
    base.update(overrides)
    return GoldenTrace(**base)


class TestDiffTraces:
    def test_identical_traces_match(self):
        assert diff_traces(_trace(), _trace()) == []

    def test_float_within_tolerance_matches(self):
        drifted = _trace()
        records = ({**drifted.records[0], "mean": 0.5 + 1e-9},)
        assert diff_traces(_trace(), _trace(records=records)) == []

    def test_float_beyond_tolerance_named_by_field(self):
        records = ({**_trace().records[0], "mean": 0.6},)
        diffs = diff_traces(_trace(), _trace(records=records))
        assert diffs and diffs[0].startswith("records[0].mean:")

    def test_integer_fields_compare_exactly(self):
        records = ({**_trace().records[0], "workload": 11},)
        diffs = diff_traces(_trace(), _trace(records=records))
        assert any(d.startswith("records[0].workload:") for d in diffs)

    def test_record_count_mismatch_reported(self):
        diffs = diff_traces(_trace(), _trace(records=()))
        assert any(d.startswith("records:") for d in diffs)

    def test_none_only_matches_none(self):
        # std serializes NaN as None; a number appearing there is a change.
        records = ({**_trace().records[0], "std": None},)
        diffs = diff_traces(_trace(), _trace(records=records))
        assert any("records[0].std" in d for d in diffs)

    def test_counter_drift_and_missing_keys_reported(self):
        actual = _trace(counters={"crowd_comparisons_total": 2})
        assert any(
            d.startswith("counters.crowd_comparisons_total")
            for d in diff_traces(_trace(), actual)
        )
        actual = _trace(counters={})
        assert any("missing" in d for d in diff_traces(_trace(), actual))
        expected = _trace(summary={})
        assert any(
            "unexpected new entry" in d for d in diff_traces(expected, _trace())
        )

    def test_trace_round_trips_through_json(self, tmp_path):
        trace = _trace()
        path = save_trace(trace, tmp_path)
        assert path == trace_path(tmp_path, "toy")
        assert load_trace(path).to_dict() == trace.to_dict()
        # And the on-disk form is plain indented JSON, reviewable in a PR.
        payload = json.loads(path.read_text())
        assert payload["name"] == "toy"


class TestGoldenSuite:
    @pytest.mark.faultfree  # golden pins record fault-free traces
    def test_checked_in_pins_still_match(self):
        # The real regression gate: current behavior vs the committed pins.
        with use_registry(MetricsRegistry()):
            report = run_golden_suite(GOLDEN_DIR)
        assert report.passed, report.to_text()
        assert set(report.diffs) == set(default_golden_cases())

    def test_missing_golden_file_fails_with_repin_hint(self, tmp_path):
        with use_registry(MetricsRegistry()):
            report = run_golden_suite(tmp_path)
        assert not report.passed
        text = report.to_text()
        assert "missing golden file" in text and "--update-golden" in text

    def test_update_writes_pins_that_then_pass(self, tmp_path):
        with use_registry(MetricsRegistry()):
            update = run_golden_suite(tmp_path, update=True)
            verify = run_golden_suite(tmp_path)
        assert update.passed
        assert set(update.updated) == set(default_golden_cases())
        assert verify.passed and not verify.updated

    def test_tampered_pin_is_caught_and_named(self, tmp_path):
        with use_registry(MetricsRegistry()):
            run_golden_suite(tmp_path, update=True)
            path = trace_path(tmp_path, "comp_chain")
            payload = json.loads(path.read_text())
            payload["records"][0]["workload"] += 1
            path.write_text(json.dumps(payload))
            report = run_golden_suite(tmp_path)
        assert not report.passed
        assert report.diffs["comp_chain"]
        assert "records[0].workload" in report.diffs["comp_chain"][0]
        # The other cases are unaffected.
        assert not report.diffs["racing_group"]

    def test_suite_telemetry(self, tmp_path):
        with use_registry(MetricsRegistry()) as registry:
            run_golden_suite(tmp_path)  # all missing -> all fail
        counters = {
            c["name"]: c["value"] for c in registry.snapshot()["counters"]
        }
        assert counters["validation_golden_cases_total"] == len(
            default_golden_cases()
        )
        assert counters["validation_suite_failures_total"] == 1
        spans = [s["name"] for s in registry.snapshot()["spans"]]
        assert "validation.golden" in spans

    def test_case_name_mismatch_is_a_config_error(self, tmp_path):
        with use_registry(MetricsRegistry()):
            with pytest.raises(ConfigError, match="named"):
                run_golden_suite(
                    tmp_path, cases={"wrong_name": lambda: _trace()}
                )
