"""BDP ranker: determinism, engine parity, checkpoint/resume, stopping.

The contract under test mirrors the SPR one (tests/test_checkpoint.py):
the same seed yields bit-identical verdicts and costs — across repeat
runs and across execution engines — and a query killed mid-flight
resumes from its checkpoint, in-process or in a fresh interpreter, to
the identical top-k at the identical total cost.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.bdp import BDPRanker, bdp_topk, resume_bdp_topk
from repro.config import ComparisonConfig, ResiliencePolicy
from repro.core.stopping import (
    ConfidenceStopping,
    PACStopping,
    stopping_from_document,
)
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import AlgorithmError, BudgetExhaustedError, ConfigError
from repro.experiments import ExperimentParams, run_method
from tests.conftest import make_latent_session

REPO_ROOT = Path(__file__).resolve().parent.parent

N_ITEMS, K = 12, 4


def fresh_oracle(n=N_ITEMS, seed=13, sigma=0.8):
    scores = np.random.default_rng(seed).normal(size=n) * 3.0
    return LatentScoreOracle(scores, GaussianNoise(sigma))


def fresh_session(**kwargs):
    # Explicit zero-fault policy: these expectations must not shift when
    # the CI fault leg exports CROWD_TOPK_FAULT_RATE.
    config = ComparisonConfig(
        confidence=0.95, budget=200, min_workload=2, batch_size=10,
        resilience=ResiliencePolicy(),
    )
    return CrowdSession(fresh_oracle(), config, seed=5, **kwargs)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        results = [
            bdp_topk(fresh_session(), list(range(N_ITEMS)), K)
            for _ in range(2)
        ]
        first, second = results
        assert first.topk == second.topk
        assert first.cost == second.cost
        assert first.rounds == second.rounds
        assert first.extras["comparisons"] == second.extras["comparisons"]
        assert first.extras["shapes"] == second.extras["shapes"]

    def test_outcome_reports_stopping_diagnostics(self):
        result = bdp_topk(fresh_session(), list(range(N_ITEMS)), K)
        assert result.method == "bdp"
        assert len(result.topk) == K
        assert result.extras["stopping"]["kind"] == "confidence"
        assert isinstance(result.extras["stopping_satisfied"], bool)
        assert result.extras["loss"] >= 0.0

    def test_max_comparisons_caps_total_purchases(self):
        result = bdp_topk(
            fresh_session(), list(range(N_ITEMS)), K, max_comparisons=5
        )
        assert result.extras["comparisons"] <= 5
        assert result.extras["stopping_satisfied"] is False

    def test_k_equals_n_answers_for_free(self):
        result = bdp_topk(fresh_session(), list(range(N_ITEMS)), N_ITEMS)
        assert sorted(result.topk) == list(range(N_ITEMS))
        assert result.cost == 0
        assert result.extras["comparisons"] == 0

    def test_ranker_rank_matches_function_form(self):
        ranker = BDPRanker(stopping=ConfidenceStopping(alpha=0.05))
        via_ranker = ranker.rank(fresh_session(), list(range(N_ITEMS)), K)
        via_function = bdp_topk(
            fresh_session(), list(range(N_ITEMS)), K,
            stopping=ConfidenceStopping(alpha=0.05),
        )
        assert via_ranker.topk == via_function.topk
        assert via_ranker.cost == via_function.cost

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(pairs_per_round=0),
            dict(max_comparisons=0),
            dict(prior_shape=0.0),
            dict(boundary_pad=-1),
        ],
    )
    def test_knob_validation(self, kwargs):
        with pytest.raises(AlgorithmError):
            BDPRanker(**kwargs)


class TestEngineParity:
    def test_lattice_engine_is_bit_identical(self):
        # Unlike the racing/sequential *group* engines, the lattice
        # execution engine promises bit-for-bit identity with the serial
        # path — BDP must inherit that through compare_many.
        params = ExperimentParams(
            dataset="imdb", n_items=10, k=3, n_runs=2, budget=200,
            min_workload=5, batch_size=10, seed=3,
        )
        serial = run_method("bdp", params)
        lattice = run_method("bdp", params, engine="lattice")
        for left, right in zip(serial.runs, lattice.runs):
            assert left.cost == right.cost
            assert left.rounds == right.rounds
            assert left.ndcg == right.ndcg
            assert left.extras["comparisons"] == right.extras["comparisons"]


class TestStoppingRules:
    def test_confidence_roundtrips_through_document(self):
        rule = ConfidenceStopping(alpha=0.07)
        assert stopping_from_document(rule.to_document()) == rule

    def test_pac_roundtrips_through_document(self):
        rule = PACStopping(epsilon=0.2, delta=0.1)
        assert stopping_from_document(rule.to_document()) == rule

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigError):
            stopping_from_document({"kind": "vibes"})

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConfidenceStopping(alpha=0.0),
            lambda: ConfidenceStopping(alpha=1.0),
            lambda: PACStopping(epsilon=0.5, delta=0.1),
            lambda: PACStopping(epsilon=-0.1, delta=0.1),
            lambda: PACStopping(epsilon=0.1, delta=0.0),
        ],
    )
    def test_parameter_validation(self, factory):
        with pytest.raises(ConfigError):
            factory()

    def test_vacuously_satisfied_when_no_rival_exists(self):
        shapes = np.ones(3)
        assert ConfidenceStopping(alpha=0.05).satisfied(shapes, 3)
        assert PACStopping(epsilon=0.1, delta=0.05).satisfied(shapes, 3)

    def test_separation_satisfies_uniformity_does_not(self):
        separated = np.array([40.0, 35.0, 0.5, 0.4])
        uniform = np.ones(4)
        rule = ConfidenceStopping(alpha=0.05)
        assert rule.satisfied(separated, 2)
        assert not rule.satisfied(uniform, 2)
        pac = PACStopping(epsilon=0.2, delta=0.05)
        assert pac.satisfied(separated, 2)
        assert not pac.satisfied(uniform, 2)


class TestPACEstimator:
    def test_pac_session_decides_a_clear_gap(self):
        session = make_latent_session(
            [0.0, 3.0], sigma=0.5, estimator="pac", pac_epsilon=0.2
        )
        record = session.compare(1, 0)
        assert record.winner == 1

    def test_zero_epsilon_never_decides_an_exact_tie(self):
        session = make_latent_session(
            [1.0, 1.0], sigma=1.0, estimator="pac", budget=60
        )
        record = session.compare(1, 0)
        assert record.winner is None

    def test_negative_epsilon_is_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(pac_epsilon=-0.1)

    def test_bdp_runs_under_pac_stopping(self):
        result = bdp_topk(
            fresh_session(), list(range(N_ITEMS)), K,
            stopping=PACStopping(epsilon=0.3, delta=0.1),
        )
        assert len(result.topk) == K
        assert result.extras["stopping"]["kind"] == "pac"


class TestRestoreInProcess:
    def test_killed_query_resumes_to_identical_result(self, tmp_path):
        baseline = fresh_session()
        expected = bdp_topk(baseline, list(range(N_ITEMS)), K)

        path = tmp_path / "kill.ckpt"
        killed = fresh_session(max_total_cost=expected.cost // 2)
        killed.enable_checkpoints(path, every=1)
        with pytest.raises(BudgetExhaustedError):
            bdp_topk(killed, list(range(N_ITEMS)), K)
        assert path.exists()

        restored = CrowdSession.restore(path, fresh_oracle())
        restored.cost.ceiling = None  # the kill was the ceiling, lift it
        result = resume_bdp_topk(restored)
        assert result.topk == expected.topk
        assert restored.total_cost == baseline.total_cost
        assert restored.total_rounds == baseline.total_rounds
        # Zero re-purchased microtasks: every charged task is in the
        # cache exactly once, just like in the baseline run.
        assert restored.cache.total_samples == restored.cost.microtasks
        assert restored.cache.total_samples == baseline.cache.total_samples

    def test_resume_without_restored_state_raises(self):
        with pytest.raises(AlgorithmError):
            resume_bdp_topk(fresh_session())

    def test_resume_from_foreign_checkpoint_raises(self, tmp_path):
        session = make_latent_session([0.0, 2.0], seed=0)
        session.compare(1, 0)
        path = tmp_path / "bare.ckpt"
        session.checkpoint(path)
        restored = CrowdSession.restore(path, fresh_oracle(n=2))
        with pytest.raises(AlgorithmError):
            resume_bdp_topk(restored)


#: Driver used by the fresh-process test below, mirroring the SPR one in
#: tests/test_checkpoint.py: three modes share one deterministic query so
#: the parent test can diff their JSON outputs.
_DRIVER = """
import json, sys
import numpy as np
from repro.algorithms.bdp import bdp_topk, resume_bdp_topk
from repro.config import ComparisonConfig, ResiliencePolicy
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import BudgetExhaustedError

mode, path = sys.argv[1], sys.argv[2]

def fresh_oracle():
    scores = np.random.default_rng(13).normal(size=12) * 3.0
    return LatentScoreOracle(scores, GaussianNoise(0.8))

config = ComparisonConfig(
    confidence=0.95, budget=200, min_workload=2, batch_size=10,
    resilience=ResiliencePolicy(),
)

if mode == "baseline":
    session = CrowdSession(fresh_oracle(), config, seed=5)
    result = bdp_topk(session, list(range(12)), 4)
    print(json.dumps({
        "topk": list(result.topk),
        "cost": session.total_cost,
        "rounds": session.total_rounds,
        "cached": session.cache.total_samples,
    }))
elif mode == "kill":
    ceiling = int(sys.argv[3])
    session = CrowdSession(fresh_oracle(), config, seed=5, max_total_cost=ceiling)
    session.enable_checkpoints(path, every=1)
    try:
        bdp_topk(session, list(range(12)), 4)
    except BudgetExhaustedError:
        print("killed")
        sys.exit(0)
    print("never tripped")
    sys.exit(1)
elif mode == "resume":
    session = CrowdSession.restore(path, fresh_oracle())
    session.cost.ceiling = None
    result = resume_bdp_topk(session)
    print(json.dumps({
        "topk": list(result.topk),
        "cost": session.total_cost,
        "rounds": session.total_rounds,
        "cached": session.cache.total_samples,
    }))
"""


def _run_driver(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("CROWD_TOPK_FAULT_RATE", None)  # the query must be reproducible
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, *map(str, argv)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestFreshProcessResume:
    def test_kill_and_resume_across_processes(self, tmp_path):
        """Checkpoint mid-query, die, restore in a brand-new interpreter,
        finish with the identical top-k at the identical total cost."""
        path = tmp_path / "xproc.ckpt"
        baseline = json.loads(_run_driver("baseline", path))
        _run_driver("kill", path, max(baseline["cost"] // 2, 1))
        assert path.exists()
        resumed = json.loads(_run_driver("resume", path))
        assert resumed["topk"] == baseline["topk"]
        assert resumed["cost"] == baseline["cost"]
        assert resumed["rounds"] == baseline["rounds"]
        assert resumed["cached"] == baseline["cached"]
        assert resumed["cached"] == resumed["cost"]
