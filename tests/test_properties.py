"""Property-based tests (hypothesis) on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cache import JudgmentCache
from repro.core.estimators import HoeffdingTester, SteinTester, StudentTester
from repro.core.items import ItemSet
from repro.core.outcomes import Outcome
from repro.metrics import kendall_tau, ndcg_at_k, top_k_precision
from repro.stats.median_cost import bubble_median_comparisons
from repro.stats.reference import hit_probability, median_in_sweet_spot_probability
from repro.stats.thurstone import win_probability

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite_floats, min_size=0, max_size=200)


class TestMomentAndScanProperties:
    @given(values=sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_scan_matches_streaming_exactly(self, values):
        """The vectorized scan must be indistinguishable from one-at-a-time
        pushes — the invariant the whole simulator's correctness rests on."""
        values = np.asarray(values)
        scanner = StudentTester(alpha=0.05, min_workload=5)
        consumed, decision = scanner.scan(values)

        streamer = StudentTester(alpha=0.05, min_workload=5)
        stream_decision, stream_consumed = None, 0
        for v in values:
            streamer.push(v)
            stream_consumed += 1
            stream_decision = streamer.decision()
            if stream_decision is not None:
                break
        assert consumed == stream_consumed if values.size else consumed == 0
        assert decision == stream_decision
        assert scanner.state.n == streamer.state.n
        if scanner.state.n:
            assert math.isclose(
                scanner.state.mean, streamer.state.mean, rel_tol=1e-9, abs_tol=1e-9
            )

    @given(values=sample_lists, split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_scan_is_chunk_invariant(self, values, split):
        """Feeding one chunk or two must consume the same samples and reach
        the same verdict (batching must never change the statistics)."""
        values = np.asarray(values)
        split = min(split, len(values))
        whole = SteinTester(alpha=0.1, min_workload=4)
        consumed_whole, decision_whole = whole.scan(values)

        parts = SteinTester(alpha=0.1, min_workload=4)
        consumed_a, decision_a = parts.scan(values[:split])
        consumed_b, decision_b = 0, decision_a
        if decision_a is None:
            consumed_b, decision_b = parts.scan(values[split:])
        assert consumed_whole == consumed_a + consumed_b
        assert decision_whole == decision_b

    @given(values=st.lists(finite_floats, min_size=2, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_decision_sign_matches_mean_sign(self, values):
        """A verdict must always point the same way as the sample mean."""
        tester = StudentTester(alpha=0.05, min_workload=2)
        consumed, decision = tester.scan(np.asarray(values))
        if decision is not None:
            assert decision == (1 if tester.state.mean > 0 else -1)


class TestHoeffdingProperties:
    @given(
        values=st.lists(st.sampled_from([-1.0, 1.0]), min_size=2, max_size=300),
        alpha=st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_verdict_before_equation3_bound(self, values, alpha):
        """Hoeffding can never decide before Equation (3)'s sample count
        for a perfectly one-sided stream (|mean| <= 1)."""
        tester = HoeffdingTester(alpha=alpha, min_workload=2, value_range=2.0)
        consumed, decision = tester.scan(np.asarray(values))
        if decision is not None:
            assert consumed >= 2.0 * math.log(2.0 / alpha)


class TestCacheProperties:
    @given(
        chunks=st.lists(
            st.tuples(st.booleans(), st.lists(finite_floats, min_size=1, max_size=20)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_orientation_invariant(self, chunks):
        """Appending through either orientation yields mirrored bags."""
        cache = JudgmentCache()
        expected: list[float] = []
        for flipped, values in chunks:
            if flipped:
                cache.append(7, 3, np.asarray(values))
                expected.extend(-v for v in values)
            else:
                cache.append(3, 7, np.asarray(values))
                expected.extend(values)
        assert np.allclose(cache.bag(3, 7), expected)
        assert np.allclose(cache.bag(7, 3), [-v for v in expected])
        assert cache.total_samples == len(expected)


class TestStatsProperties:
    @given(
        n=st.integers(min_value=2, max_value=5000),
        j=st.integers(min_value=0, max_value=5000),
        x=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_hit_probability_is_probability(self, n, j, x):
        p = hit_probability(n, min(j, n), x)
        assert 0.0 <= p <= 1.0

    @given(
        n=st.integers(min_value=20, max_value=2000),
        k=st.integers(min_value=1, max_value=10),
        x=st.integers(min_value=1, max_value=100),
        m=st.sampled_from([1, 3, 5, 7, 9, 11]),
        c=st.floats(min_value=1.1, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_sweet_spot_probability_in_unit_interval(self, n, k, x, m, c):
        assume(k < n)
        p = median_in_sweet_spot_probability(n, k, c, x, m)
        assert -1e-9 <= p <= 1.0 + 1e-9

    @given(m=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_bubble_median_cost_below_paper_bound(self, m):
        assert bubble_median_comparisons(m) <= (3 * m * m + m - 2) / 8 + 1e-9

    @given(
        mean_i=st.floats(min_value=-10, max_value=10),
        mean_j=st.floats(min_value=-10, max_value=10),
        var_i=st.floats(min_value=0, max_value=10),
        var_j=st.floats(min_value=0, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_thurstone_symmetry(self, mean_i, mean_j, var_i, var_j):
        p = win_probability(mean_i, var_i, mean_j, var_j)
        q = win_probability(mean_j, var_j, mean_i, var_i)
        assert math.isclose(p + q, 1.0, abs_tol=1e-9)
        assert 0.0 <= p <= 1.0


class TestMetricProperties:
    @st.composite
    def items_and_list(draw):
        n = draw(st.integers(min_value=2, max_value=30))
        scores = draw(
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        k = draw(st.integers(min_value=1, max_value=n))
        perm = draw(st.permutations(list(range(n))))
        return ItemSet(ids=np.arange(n), scores=np.asarray(scores)), perm[:k], k

    @given(data=items_and_list())
    @settings(max_examples=80, deadline=None)
    def test_ndcg_bounded_and_ideal_is_one(self, data):
        items, returned, k = data
        value = ndcg_at_k(items, returned, k)
        assert 0.0 <= value <= 1.0 + 1e-9
        ideal = items.true_top_k(k).tolist()
        assert ndcg_at_k(items, ideal, k) == pytest.approx(1.0)

    @given(data=items_and_list())
    @settings(max_examples=80, deadline=None)
    def test_precision_bounded(self, data):
        items, returned, k = data
        assert 0.0 <= top_k_precision(items, returned, k) <= 1.0

    @given(data=items_and_list())
    @settings(max_examples=80, deadline=None)
    def test_kendall_tau_bounded(self, data):
        items, returned, _ = data
        assert -1.0 <= kendall_tau(items, returned) <= 1.0
