"""Incremental top-k maintenance."""

import pytest

from repro.errors import AlgorithmError
from repro.extensions import insert_item
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(20)]  # item i has score i


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.3, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


class TestRejection:
    def test_weak_item_rejected_with_one_comparison(self):
        session = clean_session()
        result = insert_item(session, [19, 18, 17], 3)
        assert not result.accepted
        assert result.topk == (19, 18, 17)
        assert result.comparisons == 1
        assert result.evicted is None

    def test_rejection_costs_one_boundary_comparison(self):
        session = clean_session()
        result = insert_item(session, [19, 18, 17], 0)
        assert result.cost > 0
        assert result.cost == session.total_cost


class TestAcceptance:
    def test_strong_item_takes_its_slot(self):
        session = clean_session()
        result = insert_item(session, [19, 17, 15], 18)
        assert result.accepted
        assert result.topk == (19, 18, 17)
        assert result.evicted == 15

    def test_new_best_item_goes_first(self):
        session = clean_session()
        result = insert_item(session, [18, 17, 16], 19)
        assert result.topk == (19, 18, 17)

    def test_no_evict_grows_the_list(self):
        session = clean_session()
        result = insert_item(session, [19, 17], 18, evict=False)
        assert result.topk == (19, 18, 17)
        assert result.evicted is None

    def test_binary_search_is_logarithmic(self):
        session = clean_session()
        topk = [19, 18, 17, 16, 15, 14, 13, 12]
        result = insert_item(session, topk, 11, evict=False)
        assert not result.accepted or result.comparisons <= 1 + 3
        result = insert_item(session, topk, 19 - 19, evict=False)  # item 0
        assert result.comparisons == 1

    def test_cached_judgments_make_repeats_free(self):
        session = clean_session()
        insert_item(session, [19, 17, 15], 18)
        cost_before = session.total_cost
        repeat = insert_item(session, [19, 17, 15], 18)
        assert repeat.cost == 0
        assert session.total_cost == cost_before


class TestValidation:
    def test_empty_topk_rejected(self):
        with pytest.raises(AlgorithmError):
            insert_item(clean_session(), [], 3)

    def test_duplicate_topk_rejected(self):
        with pytest.raises(AlgorithmError):
            insert_item(clean_session(), [5, 5], 3)

    def test_already_member_rejected(self):
        with pytest.raises(AlgorithmError):
            insert_item(clean_session(), [19, 18], 18)


class TestStream:
    def test_streaming_insertions_converge_to_true_topk(self):
        # Feed all items one by one into a top-5 seeded with the weakest.
        session = clean_session(seed=4)
        topk = [4, 3, 2, 1, 0]
        for item in range(5, 20):
            result = insert_item(session, list(topk), item)
            topk = list(result.topk)
        assert topk == [19, 18, 17, 16, 15]
