"""End-to-end integration: full pipeline over every dataset + invariants
tying algorithms, sessions, caches and metrics together."""

import numpy as np
import pytest

from repro import (
    ComparisonConfig,
    SPRConfig,
    load_dataset,
    ndcg_at_k,
    spr_topk,
    top_k_recall,
)
from repro.algorithms import (
    heapsort_topk,
    quickselect_topk,
    spr_adapter,
    tournament_topk,
)

FAST = ComparisonConfig(confidence=0.95, budget=300, min_workload=10, batch_size=10)

DATASET_SETTINGS = {
    "imdb": dict(n_items=60, min_votes=5_000, max_votes=20_000),
    "book": dict(n_items=50),
    "jester": dict(n_items=40, n_users=1_000),
    "photo": dict(n_items=30),
    "peopleage": dict(n_items=40),
}


@pytest.mark.parametrize("name", sorted(DATASET_SETTINGS))
def test_spr_end_to_end_on_every_dataset(name):
    dataset = load_dataset(name, seed=2, **DATASET_SETTINGS[name])
    session = dataset.session(FAST, seed=5)
    result = spr_topk(session, dataset.items.ids.tolist(), 5)
    assert len(result.topk) == 5
    assert len(set(result.topk)) == 5
    assert session.total_cost == result.cost > 0
    # Quality: clearly better than a random answer.  Photo is bounded by
    # its small per-pair record pools (a comparison converges to the
    # empirical record mean, which can disagree with the latent order), so
    # its bar sits lower — the same effect the real dataset exhibits.
    floor = 0.4 if name == "photo" else 0.7
    assert ndcg_at_k(dataset.items, result.topk, 5) > floor


def test_all_methods_agree_on_easy_query():
    dataset = load_dataset("jester", seed=2, **DATASET_SETTINGS["jester"])
    ids = dataset.items.ids.tolist()
    recalls = {}
    for name, algorithm in [
        ("spr", spr_adapter),
        ("tournament", tournament_topk),
        ("heapsort", heapsort_topk),
        ("quickselect", quickselect_topk),
    ]:
        session = dataset.session(FAST, seed=8)
        outcome = algorithm(session, ids, 3)
        recalls[name] = top_k_recall(dataset.items, outcome.topk, 3)
    assert all(recall >= 2 / 3 for recall in recalls.values()), recalls


def test_spr_run_is_fully_reproducible():
    dataset = load_dataset("photo", seed=2, **DATASET_SETTINGS["photo"])
    runs = []
    for _ in range(2):
        session = dataset.session(FAST, seed=77)
        result = spr_topk(session, dataset.items.ids.tolist(), 4)
        runs.append((result.topk, result.cost, result.rounds))
    assert runs[0] == runs[1]


def test_session_bill_equals_cache_plus_uncached_spending():
    # Every cached sample was bought exactly once: with a cache-backed run
    # the cache size equals the total bill.
    dataset = load_dataset("jester", seed=2, **DATASET_SETTINGS["jester"])
    session = dataset.session(FAST, seed=3)
    spr_topk(session, dataset.items.ids.tolist(), 4)
    assert session.cache.total_samples == session.total_cost


def test_confidence_knob_monotone_in_cost():
    dataset = load_dataset("jester", seed=2, **DATASET_SETTINGS["jester"])
    ids = dataset.items.ids.tolist()
    costs = []
    for confidence in (0.8, 0.98):
        config = FAST.with_(confidence=confidence)
        session = dataset.session(config, seed=4)
        result = spr_topk(session, ids, 4, SPRConfig(comparison=config))
        costs.append(result.cost)
    assert costs[0] < costs[1]


def test_budget_knob_bounds_tie_spending():
    dataset = load_dataset("photo", seed=2, **DATASET_SETTINGS["photo"])
    ids = dataset.items.ids.tolist()
    costs = []
    for budget in (50, 300):
        config = FAST.with_(budget=budget)
        session = dataset.session(config, seed=4)
        result = spr_topk(session, ids, 4, SPRConfig(comparison=config))
        costs.append(result.cost)
    assert costs[0] < costs[1]


def test_public_api_quickstart_snippet():
    # The README quickstart must keep working verbatim.
    from repro import load_dataset, spr_topk, ndcg_at_k

    dataset = load_dataset("jester", seed=2, **DATASET_SETTINGS["jester"])
    session = dataset.session(seed=0)
    result = spr_topk(session, dataset.items.ids.tolist(), k=10)
    assert len(result.topk) == 10
    assert 0.0 <= ndcg_at_k(dataset.items, result.topk, 10) <= 1.0
