"""Wall-clock projection of the round-based latency model."""

import pytest

from repro.crowd.timeline import (
    BINARY_TASK_SECONDS,
    PREFERENCE_TASK_SECONDS,
    WallClockEstimate,
    project_wall_clock,
)
from tests.conftest import make_latent_session


def session_with_spending(seed=0):
    session = make_latent_session(
        [0.0, 2.0, 4.0, 6.0, 0.1], sigma=1.0, seed=seed, batch_size=10
    )
    session.compare_many([(1, 0), (3, 2)])
    session.compare(4, 0)
    return session


class TestProjection:
    def test_empty_session_takes_no_time(self):
        estimate = project_wall_clock(make_latent_session([0.0, 1.0]))
        assert estimate.seconds == 0.0

    def test_projection_scales_with_rounds(self):
        session = session_with_spending()
        few_workers = project_wall_clock(session, workers=1)
        many_workers = project_wall_clock(session, workers=100)
        assert few_workers.seconds >= many_workers.seconds
        assert many_workers.rounds == session.total_rounds

    def test_round_floor_is_one_answer_time(self):
        session = session_with_spending()
        estimate = project_wall_clock(
            session, workers=10_000, posting_overhead_seconds=0.0
        )
        assert estimate.seconds >= session.total_rounds * PREFERENCE_TASK_SECONDS

    def test_binary_tasks_are_faster(self):
        session = session_with_spending()
        preference = project_wall_clock(session, workers=1)
        binary = project_wall_clock(
            session, workers=1, task_seconds=BINARY_TASK_SECONDS
        )
        assert binary.seconds < preference.seconds

    def test_paper_scale_sanity(self):
        # The paper's PeopleAge run: ~10.5k microtasks in ~7 hours.  The
        # default projection must land in the same order of magnitude for
        # a comparable spend profile.
        session = make_latent_session(
            [float(i) for i in range(4)], sigma=1.0, batch_size=30
        )
        session.charge_cost(10_560)
        session.charge_rounds(320)
        estimate = project_wall_clock(session, workers=30)
        assert 1.0 < estimate.hours < 24.0

    def test_summary_and_hours(self):
        estimate = WallClockEstimate(
            seconds=7200.0, rounds=10, microtasks=300, workers=30
        )
        assert estimate.hours == pytest.approx(2.0)
        assert "300" in estimate.summary()

    def test_validation(self):
        session = session_with_spending()
        with pytest.raises(ValueError):
            project_wall_clock(session, workers=0)
        with pytest.raises(ValueError):
            project_wall_clock(session, task_seconds=0.0)
        with pytest.raises(ValueError):
            project_wall_clock(session, posting_overhead_seconds=-1.0)
