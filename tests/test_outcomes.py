"""The Outcome enum."""

import pytest

from repro.core.outcomes import Outcome


def test_from_code():
    assert Outcome.from_code(1) is Outcome.LEFT
    assert Outcome.from_code(-1) is Outcome.RIGHT
    assert Outcome.from_code(0) is Outcome.TIE
    assert Outcome.from_code(None) is Outcome.TIE


def test_flipped_is_involutive():
    for outcome in Outcome:
        assert outcome.flipped().flipped() is outcome


def test_flipped_swaps_sides():
    assert Outcome.LEFT.flipped() is Outcome.RIGHT
    assert Outcome.TIE.flipped() is Outcome.TIE


def test_decided():
    assert Outcome.LEFT.decided
    assert Outcome.RIGHT.decided
    assert not Outcome.TIE.decided
