"""Reference-selection probability math (Eq. 1, Lemma 2, problem (2))."""

import numpy as np
import pytest

from repro.stats.reference import (
    SamplingPlan,
    hit_probability,
    median_in_sweet_spot_probability,
    solve_sampling_plan,
)


class TestHitProbability:
    def test_equation_one_closed_form(self):
        # Pr{max of x samples within top-j} = 1 - (1 - j/N)^x
        assert hit_probability(100, 10, 5) == pytest.approx(1 - 0.9**5)

    def test_zero_top_set_is_impossible(self):
        assert hit_probability(100, 0, 10) == 0.0

    def test_full_top_set_is_certain(self):
        assert hit_probability(100, 100, 1) == 1.0

    def test_monotone_in_samples(self):
        probs = [hit_probability(100, 5, x) for x in (1, 2, 5, 20, 100)]
        assert probs == sorted(probs)

    def test_monotone_in_top_set(self):
        probs = [hit_probability(100, j, 10) for j in (1, 5, 20, 50)]
        assert probs == sorted(probs)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            hit_probability(0, 1, 1)
        with pytest.raises(ValueError):
            hit_probability(10, 1, 0)


class TestSweetSpotProbability:
    def test_requires_odd_m(self):
        with pytest.raises(ValueError):
            median_in_sweet_spot_probability(100, 10, 1.5, 5, 4)

    def test_requires_valid_k(self):
        with pytest.raises(ValueError):
            median_in_sweet_spot_probability(100, 0, 1.5, 5, 3)

    def test_requires_c_above_one(self):
        with pytest.raises(ValueError):
            median_in_sweet_spot_probability(100, 10, 1.0, 5, 3)

    def test_probability_in_unit_interval(self):
        p = median_in_sweet_spot_probability(200, 10, 1.5, 11, 13)
        assert 0.0 <= p <= 1.0

    def test_matches_monte_carlo(self, rng):
        n, k, c, x, m = 100, 10, 2.0, 12, 9
        hits = 0
        trials = 20_000
        for _ in range(trials):
            maxima = rng.integers(1, n + 1, size=(m, x)).min(axis=1)
            median = int(np.median(maxima))
            hits += int(k <= median <= int(c * k))
        analytic = median_in_sweet_spot_probability(n, k, c, x, m)
        assert hits / trials == pytest.approx(analytic, abs=0.015)

    def test_k_equals_one_has_no_too_good_risk(self):
        # With k=1 the median can never be "too good".
        p = median_in_sweet_spot_probability(50, 1, 3.0, 30, 7)
        assert p > 0.5


class TestSolveSamplingPlan:
    def test_returns_plan_within_budget(self):
        plan = solve_sampling_plan(200, 10, 1.5)
        assert isinstance(plan, SamplingPlan)
        assert plan.comparisons <= plan.comparison_budget
        assert plan.m % 2 == 1
        assert plan.x >= 1

    def test_probability_matches_direct_evaluation(self):
        plan = solve_sampling_plan(200, 10, 1.5)
        direct = median_in_sweet_spot_probability(200, 10, 1.5, plan.x, plan.m)
        assert plan.probability == pytest.approx(direct, rel=1e-9)

    def test_larger_budget_never_hurts(self):
        tight = solve_sampling_plan(300, 10, 1.5, comparison_budget=100)
        loose = solve_sampling_plan(300, 10, 1.5, comparison_budget=600)
        assert loose.probability >= tight.probability - 1e-12

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            solve_sampling_plan(1, 1, 1.5)
        with pytest.raises(ValueError):
            solve_sampling_plan(100, 100, 1.5)
        with pytest.raises(ValueError):
            solve_sampling_plan(100, 10, 1.5, comparison_budget=0)

    def test_small_n(self):
        plan = solve_sampling_plan(5, 2, 1.5)
        assert plan.comparisons <= 5
