"""Judgment oracles: simulation rules, batching consistency, graded support."""

import numpy as np
import pytest

from repro.crowd.oracle import (
    BinaryOracle,
    HistogramOracle,
    LatentScoreOracle,
    RecordDatabaseOracle,
    UserTableOracle,
)
from repro.crowd.workers import GaussianNoise
from repro.errors import OracleError


class TestLatentScoreOracle:
    def test_mean_tracks_score_gap(self, rng):
        oracle = LatentScoreOracle(np.array([0.0, 3.0]), GaussianNoise(1.0))
        draws = oracle.draw(1, 0, 4000, rng)
        assert draws.mean() == pytest.approx(3.0, abs=0.1)

    def test_antisymmetric_in_expectation(self, rng):
        oracle = LatentScoreOracle(np.array([0.0, 3.0]), GaussianNoise(1.0))
        fwd = oracle.draw(1, 0, 4000, rng).mean()
        rev = oracle.draw(0, 1, 4000, rng).mean()
        assert fwd == pytest.approx(-rev, abs=0.2)

    def test_draw_pairs_matches_draw_distribution(self, rng):
        oracle = LatentScoreOracle(np.arange(4, dtype=float), GaussianNoise(0.5))
        matrix = oracle.draw_pairs(
            np.array([3, 2]), np.array([0, 1]), 2000, rng
        )
        assert matrix.shape == (2, 2000)
        assert matrix[0].mean() == pytest.approx(3.0, abs=0.1)
        assert matrix[1].mean() == pytest.approx(1.0, abs=0.1)

    def test_sparse_ids_supported(self, rng):
        oracle = LatentScoreOracle({10: 0.0, 99: 2.0}, GaussianNoise(0.1))
        assert oracle.draw(99, 10, 100, rng).mean() == pytest.approx(2.0, abs=0.1)

    def test_unknown_item_rejected(self, rng):
        oracle = LatentScoreOracle(np.array([0.0, 1.0]))
        with pytest.raises(OracleError):
            oracle.draw(0, 7, 1, rng)

    def test_rating_support(self, rng):
        oracle = LatentScoreOracle(np.array([0.0, 2.0]), GaussianNoise(0.5))
        assert oracle.supports_rating
        assert oracle.rate(1, 2000, rng).mean() == pytest.approx(2.0, abs=0.1)


class TestHistogramOracle:
    @pytest.fixture
    def oracle(self):
        support = np.arange(1.0, 6.0)
        pmfs = {
            0: np.array([0.6, 0.3, 0.1, 0.0, 0.0]),  # poor item
            1: np.array([0.0, 0.0, 0.1, 0.3, 0.6]),  # great item
            2: np.array([0.2, 0.2, 0.2, 0.2, 0.2]),  # uniform
        }
        return HistogramOracle(support, pmfs)

    def test_mean_rating(self, oracle):
        assert oracle.mean_rating(2) == pytest.approx(3.0)
        assert oracle.mean_rating(1) == pytest.approx(4.5)

    def test_draw_matches_histogram_difference(self, oracle, rng):
        draws = oracle.draw(1, 0, 5000, rng)
        expected = oracle.mean_rating(1) - oracle.mean_rating(0)
        assert draws.mean() == pytest.approx(expected, abs=0.1)

    def test_values_live_on_support_differences(self, oracle, rng):
        draws = oracle.draw(0, 1, 500, rng)
        assert np.all(draws == np.round(draws))
        assert np.all(np.abs(draws) <= 4)

    def test_bounds(self, oracle):
        assert oracle.bounds == (-4.0, 4.0)
        assert oracle.value_range == 8.0

    def test_rate_distribution(self, oracle, rng):
        ratings = oracle.rate(0, 5000, rng)
        assert ratings.mean() == pytest.approx(1.5, abs=0.1)
        assert set(np.unique(ratings)) <= {1.0, 2.0, 3.0}

    def test_draw_pairs_shape_and_mean(self, oracle, rng):
        matrix = oracle.draw_pairs(np.array([1, 1]), np.array([0, 2]), 3000, rng)
        assert matrix.shape == (2, 3000)
        assert matrix[1].mean() == pytest.approx(1.5, abs=0.15)

    def test_validates_pmfs(self):
        support = np.arange(1.0, 4.0)
        with pytest.raises(OracleError):
            HistogramOracle(support, {0: np.array([0.5, 0.5])})  # wrong shape
        with pytest.raises(OracleError):
            HistogramOracle(support, {0: np.array([0.5, 0.6, 0.2])})  # not a pmf

    def test_validates_support(self):
        with pytest.raises(OracleError):
            HistogramOracle(np.array([1.0]), {0: np.array([1.0])})
        with pytest.raises(OracleError):
            HistogramOracle(np.array([2.0, 1.0]), {0: np.array([0.5, 0.5])})

    def test_unknown_item(self, oracle, rng):
        with pytest.raises(OracleError):
            oracle.draw(0, 9, 1, rng)


class TestUserTableOracle:
    @pytest.fixture
    def oracle(self, rng):
        # 200 users, 3 items; item quality 0 < 1 < 2, strong user bias.
        bias = rng.normal(0, 5, size=(200, 1))
        quality = np.array([0.0, 1.0, 2.0])
        return UserTableOracle(bias + quality[None, :])

    def test_within_user_differencing_cancels_bias(self, oracle, rng):
        draws = oracle.draw(2, 0, 3000, rng)
        assert draws.mean() == pytest.approx(2.0, abs=0.05)
        assert draws.std() < 1.0  # bias cancelled exactly in this model

    def test_mean_rating(self, oracle):
        assert oracle.mean_rating(1) - oracle.mean_rating(0) == pytest.approx(1.0)

    def test_draw_pairs(self, oracle, rng):
        matrix = oracle.draw_pairs(np.array([1, 2]), np.array([0, 0]), 1000, rng)
        assert matrix[0].mean() == pytest.approx(1.0, abs=0.1)
        assert matrix[1].mean() == pytest.approx(2.0, abs=0.1)

    def test_rate(self, oracle, rng):
        assert oracle.supports_rating
        ratings = oracle.rate(2, 5000, rng)
        assert ratings.mean() == pytest.approx(oracle.mean_rating(2), abs=0.5)

    def test_validates_matrix(self):
        with pytest.raises(OracleError):
            UserTableOracle(np.array([1.0, 2.0]))  # 1-D
        with pytest.raises(OracleError):
            UserTableOracle(np.array([[1.0, np.nan]]))

    def test_custom_item_ids(self, rng):
        oracle = UserTableOracle(np.array([[1.0, 5.0]]), item_ids=np.array([10, 20]))
        assert oracle.draw(20, 10, 5, rng).tolist() == [4.0] * 5


class TestRecordDatabaseOracle:
    @pytest.fixture
    def oracle(self):
        return RecordDatabaseOracle(
            {
                (0, 1): np.array([0.5, 0.7, 0.6]),
                (2, 1): np.array([-0.2, -0.4]),
            }
        )

    def test_draws_come_from_records(self, oracle, rng):
        draws = oracle.draw(0, 1, 200, rng)
        assert set(np.unique(draws)) <= {0.5, 0.7, 0.6}

    def test_orientation_flips_sign(self, oracle, rng):
        draws = oracle.draw(1, 0, 200, rng)
        assert set(np.unique(draws)) <= {-0.5, -0.7, -0.6}

    def test_record_count(self, oracle):
        assert oracle.record_count(0, 1) == 3
        assert oracle.record_count(1, 2) == 2

    def test_missing_pair_rejected(self, oracle, rng):
        with pytest.raises(OracleError):
            oracle.draw(0, 2, 1, rng)

    def test_draw_pairs(self, oracle, rng):
        matrix = oracle.draw_pairs(np.array([0, 1]), np.array([1, 2]), 100, rng)
        assert set(np.unique(matrix[0])) <= {0.5, 0.6, 0.7}
        assert set(np.unique(matrix[1])) <= {0.2, 0.4}

    def test_validates_database(self):
        with pytest.raises(OracleError):
            RecordDatabaseOracle({})
        with pytest.raises(OracleError):
            RecordDatabaseOracle({(1, 1): np.array([0.5])})
        with pytest.raises(OracleError):
            RecordDatabaseOracle({(0, 1): np.array([])})
        with pytest.raises(OracleError):
            RecordDatabaseOracle(
                {(0, 1): np.array([0.5]), (1, 0): np.array([0.5])}
            )


class TestBinaryOracle:
    def test_only_signs_emitted(self, rng):
        base = LatentScoreOracle(np.array([0.0, 1.0]), GaussianNoise(2.0))
        oracle = BinaryOracle(base)
        draws = oracle.draw(1, 0, 500, rng)
        assert set(np.unique(draws)) <= {-1.0, 1.0}

    def test_zeros_redrawn(self, rng):
        support = np.array([1.0, 2.0])
        base = HistogramOracle(
            support, {0: np.array([0.5, 0.5]), 1: np.array([0.4, 0.6])}
        )
        oracle = BinaryOracle(base)
        draws = oracle.draw(1, 0, 300, rng)
        assert np.all(draws != 0)

    def test_draw_pairs_redraws_zeros(self, rng):
        support = np.array([1.0, 2.0])
        base = HistogramOracle(
            support, {0: np.array([0.5, 0.5]), 1: np.array([0.4, 0.6])}
        )
        matrix = BinaryOracle(base).draw_pairs(
            np.array([1, 0]), np.array([0, 1]), 50, rng
        )
        assert np.all(matrix != 0)

    def test_identical_items_eventually_error(self, rng):
        support = np.array([1.0, 2.0])
        pmf = np.array([0.5, 0.5])
        base = RecordDatabaseOracle({(0, 1): np.array([0.0])})
        with pytest.raises(OracleError):
            BinaryOracle(base).draw(0, 1, 10, rng)

    def test_bounds_are_binary(self):
        base = LatentScoreOracle(np.array([0.0, 1.0]))
        assert BinaryOracle(base).bounds == (-1.0, 1.0)
        assert BinaryOracle(base).value_range == 2.0


class TestHistogramSamplingVectorization:
    """``_sample_ratings``'s searchsorted path vs the broadcast reference.

    The sampler was rewritten from an O(pairs × size × grid) comparison
    broadcast to one global ``searchsorted`` over row-shifted CDFs; these
    tests pin that the rewrite is draw-for-draw identical under a pinned
    RNG (so recorded experiment results cannot move) and that the sampled
    distribution still matches the pmfs.
    """

    @pytest.fixture
    def oracle(self):
        support = np.arange(1.0, 6.0)
        pmfs = {
            0: np.array([0.6, 0.3, 0.1, 0.0, 0.0]),
            1: np.array([0.0, 0.0, 0.1, 0.3, 0.6]),
            2: np.array([0.2, 0.2, 0.2, 0.2, 0.2]),
        }
        return HistogramOracle(support, pmfs)

    @staticmethod
    def _reference_sample(oracle, rows, size, rng):
        """The former broadcast implementation, kept as the oracle's spec."""
        u = rng.random((len(rows), size))
        idx = (u[:, :, None] > oracle._cdf[rows][:, None, :]).sum(axis=2)
        return oracle._support[idx]

    def test_matches_broadcast_reference_draw_for_draw(self, oracle):
        rows = np.array([0, 2, 1, 2])
        expected = self._reference_sample(
            oracle, rows, 257, np.random.default_rng(42)
        )
        actual = oracle._sample_ratings(rows, 257, np.random.default_rng(42))
        np.testing.assert_array_equal(actual, expected)

    def test_matches_reference_on_degenerate_pmfs(self, oracle):
        # Zero-probability cells produce repeated CDF values; ties must
        # resolve exactly as the strict ``u > cdf`` comparison did.
        rows = np.array([0, 1])
        for seed in range(5):
            expected = self._reference_sample(
                oracle, rows, 64, np.random.default_rng(seed)
            )
            actual = oracle._sample_ratings(
                rows, 64, np.random.default_rng(seed)
            )
            np.testing.assert_array_equal(actual, expected)

    def test_distribution_unchanged(self, oracle, rng):
        ratings = oracle._sample_ratings(np.array([0]), 20000, rng)[0]
        freqs = [(ratings == v).mean() for v in oracle._support]
        np.testing.assert_allclose(freqs, [0.6, 0.3, 0.1, 0.0, 0.0], atol=0.02)
