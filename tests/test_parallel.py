"""The parallel experiment engine: determinism, merging, job resolution.

The engine's contract is *bit-for-bit identity* with the serial runner:
every (method × cell × run) work unit receives the same pre-spawned RNG
streams the serial loop would have used, so the only fields allowed to
differ are wall-clock timings.  These tests pin that contract for
``run_method``/``run_methods``, a multi-cell sweep, and the merged
telemetry snapshot (whose microtask counters must reconcile with the
summed cost ledgers, exactly as in a serial run).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentParams, run_method, run_methods
from repro.experiments.parallel import (
    RunSpec,
    get_default_jobs,
    resolve_jobs,
    run_specs,
    set_default_jobs,
    use_jobs,
)
from repro.experiments.runner import _validated_kwargs
from repro.experiments.scalability import run_scalability
from repro.telemetry import use_registry


def deterministic_runs(stats):
    """The per-run fields that must not depend on the execution mode."""
    return [(r.cost, r.rounds, r.ndcg, r.precision) for r in stats.runs]


def deterministic_aggregates(stats):
    return (
        stats.method, stats.n_runs, stats.mean_cost, stats.std_cost,
        stats.mean_rounds, stats.std_rounds, stats.mean_ndcg,
        stats.std_ndcg, stats.mean_precision,
    )


def comparable_counters(registry):
    """All counters except the execution engines' own bookkeeping.

    Which engine ran (pool workers, fused lattice lanes, plain serial)
    is allowed to differ between the legs under comparison — e.g. when
    ``CROWD_TOPK_ENGINE=lattice`` fills the serial slot — so the
    engines' own instrumentation is excluded from parity.
    """
    engine_prefixes = ("experiment_parallel", "experiment_lattice",
                       "crowd_lattice")
    return {
        (c.name, c.labels): c.value
        for c in registry._counters.values()
        if not c.name.startswith(engine_prefixes)
    }


CELLS = (
    ExperimentParams(dataset="jester", n_items=12, k=3, n_runs=3, seed=5),
    ExperimentParams(dataset="jester", n_items=14, k=2, n_runs=2, seed=11),
)
METHODS = ["spr", "heapsort"]


class TestJobResolution:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_and_bool_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)
        with pytest.raises(ConfigError):
            resolve_jobs(True)

    def test_use_jobs_scopes_and_restores(self):
        before = get_default_jobs()
        with use_jobs(3):
            assert get_default_jobs() == 3
            assert resolve_jobs(None) == 3
            assert resolve_jobs(2) == 2  # explicit wins over ambient
        assert get_default_jobs() == before

    def test_set_default_jobs_returns_previous(self):
        previous = set_default_jobs(2)
        try:
            assert get_default_jobs() == 2
        finally:
            set_default_jobs(previous)


class TestDeterminismRegression:
    """Serial vs pooled execution of a small (methods × cells) sweep."""

    @pytest.fixture(scope="class")
    def executions(self):
        with use_registry() as serial_registry:
            serial = [run_methods(METHODS, cell) for cell in CELLS]
        with use_registry() as parallel_registry:
            parallel = [
                run_methods(METHODS, cell, n_jobs=4) for cell in CELLS
            ]
        return serial, parallel, serial_registry, parallel_registry

    def test_run_records_identical(self, executions):
        serial, parallel, _, _ = executions
        for cell_serial, cell_parallel in zip(serial, parallel):
            for method in METHODS:
                assert deterministic_runs(cell_serial[method]) == (
                    deterministic_runs(cell_parallel[method])
                )

    def test_method_stats_aggregates_identical(self, executions):
        serial, parallel, _, _ = executions
        for cell_serial, cell_parallel in zip(serial, parallel):
            for method in METHODS:
                assert deterministic_aggregates(cell_serial[method]) == (
                    deterministic_aggregates(cell_parallel[method])
                )

    def test_merged_counters_match_serial_registry(self, executions):
        _, _, serial_registry, parallel_registry = executions
        assert comparable_counters(serial_registry) == (
            comparable_counters(parallel_registry)
        )

    def test_microtask_counter_reconciles_with_summed_ledgers(self, executions):
        serial, _, _, parallel_registry = executions
        total_cost = sum(
            record.cost
            for cell in serial
            for stats in cell.values()
            for record in stats.runs
        )
        assert (
            parallel_registry.counter_value("crowd_microtasks_total")
            == total_cost
        )

    def test_merged_spans_match_serial_structure(self, executions):
        _, _, serial_registry, parallel_registry = executions
        serial_spans = [
            (s.name, s.parent, s.depth, s.cost, s.rounds)
            for s in serial_registry.spans
        ]
        parallel_spans = [
            (s.name, s.parent, s.depth, s.cost, s.rounds)
            for s in parallel_registry.spans
        ]
        assert serial_spans == parallel_spans

    def test_merged_histograms_match_below_reservoir(self, executions):
        _, _, serial_registry, parallel_registry = executions
        for key, serial_hist in serial_registry._histograms.items():
            if "seconds" in serial_hist.name:
                continue  # wall time legitimately differs
            parallel_hist = parallel_registry._histograms[key]
            assert parallel_hist.count == serial_hist.count, serial_hist.name
            assert sorted(parallel_hist._values) == sorted(
                serial_hist._values
            ), serial_hist.name


class TestEntryPoints:
    def test_run_method_jobs_matches_serial(self):
        params = CELLS[0]
        serial = run_method("heapsort", params)
        pooled = run_method("heapsort", params, n_jobs=2)
        assert deterministic_runs(serial) == deterministic_runs(pooled)
        assert deterministic_aggregates(serial) == deterministic_aggregates(pooled)

    def test_run_method_kwargs_cross_the_process_boundary(self):
        params = CELLS[0]
        serial = run_method("spr", params, spr_config=params.spr_config())
        pooled = run_method(
            "spr", params, n_jobs=2, spr_config=params.spr_config()
        )
        assert deterministic_runs(serial) == deterministic_runs(pooled)

    def test_ambient_jobs_routes_through_engine(self):
        params = CELLS[0]
        serial = run_method("heapsort", params)
        with use_registry() as registry, use_jobs(2):
            ambient = run_method("heapsort", params)
        assert deterministic_runs(serial) == deterministic_runs(ambient)
        assert registry.counter_value("experiment_parallel_tasks_total") == (
            params.n_runs
        )

    def test_unknown_method_raises_before_spawning(self):
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            run_method("nope", CELLS[0], n_jobs=2)

    def test_run_specs_empty(self):
        assert run_specs([], n_jobs=2) == []

    def test_run_specs_infimum(self):
        params = CELLS[1]
        from repro.experiments import run_infimum

        serial = run_infimum(params)
        pooled = run_infimum(params, n_jobs=2)
        assert deterministic_runs(serial) == deterministic_runs(pooled)

    def test_run_specs_grid_order_is_spec_major(self):
        params = CELLS[0]
        specs = [
            RunSpec(
                kind="algorithm", method=m, params=params,
                method_kwargs=_validated_kwargs(m, params, {}),
            )
            for m in METHODS
        ]
        pooled = run_specs(specs, n_jobs=2)
        serial = [run_method(m, params) for m in METHODS]
        for s, p in zip(serial, pooled):
            assert s.method == p.method
            assert deterministic_runs(s) == deterministic_runs(p)


class TestSweepParallel:
    def test_scalability_sweep_identical(self):
        params = ExperimentParams(
            dataset="jester", n_items=10, k=3, n_runs=2, seed=3
        )
        kwargs = dict(
            vary="k", params=params, values=(2, 3), methods=("heapsort",),
            include_infimum=True,
        )
        serial_tmc, serial_lat = run_scalability(**kwargs)
        pooled_tmc, pooled_lat = run_scalability(**kwargs, n_jobs=3)
        assert serial_tmc.to_text() == pooled_tmc.to_text()
        assert serial_lat.to_text() == pooled_lat.to_text()
