"""The multi-tenant query service: identity, SLAs, fairness, durability."""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    AdmissionError,
    BudgetExhaustedError,
    ConfigError,
    QueryCancelledError,
    SLAExceededError,
)
from repro.service import (
    AdmissionController,
    FairMarketplace,
    QueryService,
    QuerySpec,
    run_query,
    spec_from_document,
)
from repro.telemetry import MetricsRegistry, ObservatoryServer

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A small, fast spec most tests build on.
BASE = QuerySpec(
    method="spr", k=3, dataset="synthetic", n_items=12, seed=7,
    tenant="acme", cost_sla=500_000,
)


def make_service(**kwargs) -> QueryService:
    kwargs.setdefault("registry", MetricsRegistry())
    return QueryService(**kwargs)


class TestQuerySpec:
    def test_rejects_unknown_method(self):
        with pytest.raises(ConfigError):
            QuerySpec(method="sortalot")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            QuerySpec(k=0)
        with pytest.raises(ConfigError):
            QuerySpec(k=5, n_items=3)
        with pytest.raises(ConfigError):
            QuerySpec(cost_sla=0)
        with pytest.raises(ConfigError):
            QuerySpec(tenant="")
        with pytest.raises(ConfigError):
            QuerySpec(dataset=None, items=None)

    def test_document_round_trip(self):
        spec = BASE.with_(latency_sla=50, name="night-batch")
        revived = spec_from_document(spec.to_document())
        assert revived == spec

    def test_document_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            spec_from_document({"method": "spr", "workers": 4})

    def test_partial_document_takes_defaults(self):
        spec = spec_from_document({"method": "bdp", "k": 4})
        assert spec.method == "bdp"
        assert spec.tenant == "default"
        assert spec.dataset == "jester"

    def test_display_name(self):
        assert BASE.display_name == "acme/spr:k=3"
        assert BASE.with_(name="nightly").display_name == "nightly"


class TestSingleQueryIdentity:
    """submit(spec) on a cold tenant is bit-identical to the standalone run."""

    @pytest.mark.faultfree  # pins exact costs of one seeded trace
    @pytest.mark.parametrize("method", ["spr", "bdp"])
    def test_service_matches_standalone(self, method):
        spec = BASE.with_(method=method, tenant=f"iso-{method}")
        standalone = run_query(spec, registry=MetricsRegistry())
        with make_service(max_workers=2) as service:
            outcome = service.submit(spec).result(timeout=120)
        assert list(outcome.topk) == list(standalone.topk)
        assert outcome.cost == standalone.cost
        assert outcome.rounds == standalone.rounds

    @pytest.mark.faultfree
    def test_handle_reports_the_outcome(self):
        with make_service(max_workers=1) as service:
            handle = service.submit(BASE)
            outcome = handle.result(timeout=120)
        assert handle.status() == "done"
        assert handle.done
        doc = handle.to_document()
        assert doc["status"] == "done"
        assert doc["tenant"] == "acme"
        assert doc["cost"] == outcome.cost
        assert doc["topk"] == list(outcome.topk)


class TestConcurrentTenants:
    def test_eight_queries_two_tenants_within_slas(self):
        registry = MetricsRegistry()
        with make_service(
            max_workers=4, marketplace_slots=2, registry=registry
        ) as service:
            handles = [
                service.submit(
                    BASE.with_(
                        tenant="acme" if n % 2 else "globex",
                        seed=n,
                        cost_sla=500_000,
                        latency_sla=10_000,
                    )
                )
                for n in range(8)
            ]
            outcomes = [handle.result(timeout=300) for handle in handles]
        assert all(handle.status() == "done" for handle in handles)
        for spec, outcome in zip((h.spec for h in handles), outcomes):
            assert outcome.cost <= spec.cost_sla
            assert outcome.rounds <= spec.latency_sla
        # Cross-query reuse: later queries answered comparisons from the
        # shared cache, and the per-tenant counters saw it.
        stats = service.cache.stats()["tenants"]
        assert stats["acme"]["hits"] > 0
        assert stats["globex"]["hits"] > 0
        assert registry.counter_total("service_cache_hits_total") > 0
        assert registry.counter_total("service_queries_total") == 8

    def test_queries_document_carries_tenants_and_slas(self):
        with make_service(max_workers=2) as service:
            service.submit(BASE.with_(latency_sla=9_999)).result(timeout=120)
            document = service.queries_document()
        (row,) = document["queries"]
        assert row["tenant"] == "acme"
        assert row["cost_sla"] == 500_000
        assert row["latency_sla"] == 9_999
        assert row["status"] == "done"
        totals = document["service"]
        assert totals["finished"] == 1
        assert "acme" in totals["cache"]["tenants"]
        assert totals["marketplace"]["slots"] == 4


class TestAdmissionControl:
    def test_queue_policy_parks_then_runs(self):
        with make_service(max_workers=2, capacity=600_000) as service:
            first = service.submit(BASE.with_(seed=1))
            second = service.submit(BASE.with_(seed=2, tenant="globex"))
            assert first.result(timeout=120)
            assert second.result(timeout=120)
        assert service.admission.committed == 0

    def test_reject_policy_raises(self):
        with make_service(
            max_workers=1, capacity=600_000, admission="reject"
        ) as service:
            service.submit(BASE.with_(seed=1))
            with pytest.raises(AdmissionError):
                service.submit(BASE.with_(seed=2))

    def test_uncommitted_specs_always_admit(self):
        with make_service(
            max_workers=1, capacity=100, admission="reject"
        ) as service:
            handle = service.submit(BASE.with_(cost_sla=None))
            assert handle.result(timeout=120)

    def test_controller_bookkeeping(self):
        controller = AdmissionController(
            capacity=100, policy="queue", registry=MetricsRegistry()
        )
        assert controller.try_admit(60)
        assert not controller.try_admit(60)
        assert controller.committed == 60
        controller.release(60)
        assert controller.readmit(60)


class TestSLAs:
    def test_cost_sla_breach_fails_the_query(self):
        registry = MetricsRegistry()
        with make_service(max_workers=1, registry=registry) as service:
            handle = service.submit(BASE.with_(cost_sla=50))
            with pytest.raises(BudgetExhaustedError):
                handle.result(timeout=120)
        assert handle.status() == "failed"
        assert registry.counter_total("service_sla_breaches_total") == 1

    def test_latency_sla_breach_fails_the_query(self):
        registry = MetricsRegistry()
        with make_service(max_workers=1, registry=registry) as service:
            handle = service.submit(BASE.with_(latency_sla=1))
            with pytest.raises(SLAExceededError):
                handle.result(timeout=120)
        assert handle.status() == "failed"
        assert registry.counter_total("service_sla_breaches_total") == 1


class TestCancellation:
    def test_cancel_a_parked_query(self):
        with make_service(max_workers=1, capacity=500_000) as service:
            service.submit(BASE.with_(seed=1))
            parked = service.submit(BASE.with_(seed=2))
            assert parked.cancel()
            with pytest.raises(QueryCancelledError):
                parked.result(timeout=30)
        assert parked.status() == "cancelled"

    def test_cancel_a_running_query(self):
        with make_service(max_workers=1) as service:
            handle = service.submit(
                BASE.with_(method="bdp", n_items=25, tenant="slow")
            )
            while handle.status() == "queued":
                time.sleep(0.005)
            assert handle.cancel()
            with pytest.raises(QueryCancelledError):
                handle.result(timeout=60)
        assert handle.status() == "cancelled"

    def test_cancel_after_completion_is_refused(self):
        with make_service(max_workers=1) as service:
            handle = service.submit(BASE)
            handle.result(timeout=120)
            assert not handle.cancel()


class TestFairMarketplace:
    def test_saturating_tenant_does_not_starve_the_light_one(self):
        market = FairMarketplace(
            slots=1, quantum=100, registry=MetricsRegistry()
        )
        heavy = market.open_lane("heavy")
        light = market.open_lane("light")
        heavy_rounds = []
        stop = threading.Event()

        def heavy_loop():
            while not stop.is_set():
                heavy.gate(50)
                heavy_rounds.append(1)
                # Simulated round work.  A gate-only spin never drops the
                # GIL, so the light tenant's gate() call cannot even reach
                # the marketplace lock until a switch interval (~5 ms)
                # elapses — thousands of µs-scale rounds.  Real rounds do
                # crowd work between gates; model that, then measure DRR.
                time.sleep(0.0005)
            heavy.close()

        worker = threading.Thread(target=heavy_loop, daemon=True)
        worker.start()
        while not heavy_rounds:
            time.sleep(0.001)
        before = len(heavy_rounds)
        light.gate(50)  # parks behind the saturating tenant, must grant
        starved_for = len(heavy_rounds) - before
        light.close()
        stop.set()
        worker.join(timeout=30)
        assert not worker.is_alive()
        # DRR: between any two rounds of the heavy tenant, the light
        # tenant's head request gets a visit — a handful of rounds at
        # most, never proportional to the heavy tenant's backlog.
        assert starved_for <= 5

    def test_abort_wakes_a_parked_lane(self):
        market = FairMarketplace(slots=1, registry=MetricsRegistry())
        holder = market.open_lane("a")
        holder.gate(10)  # takes the only slot and keeps it
        parked = market.open_lane("b")
        failure = []

        def blocked():
            try:
                parked.gate(10)
            except QueryCancelledError as exc:
                failure.append(exc)

        worker = threading.Thread(target=blocked, daemon=True)
        worker.start()
        while not market.snapshot()["waiting"].get("b"):
            time.sleep(0.001)
        parked.abort()
        worker.join(timeout=30)
        assert failure
        holder.close()

    def test_uncontended_lane_grants_in_place(self):
        market = FairMarketplace(slots=2, registry=MetricsRegistry())
        lane = market.open_lane("solo")
        for _ in range(100):
            lane.gate(25)
        lane.close()
        assert market.snapshot()["free_slots"] == 2


class TestServiceOverHttp:
    def test_submit_result_cancel_routes(self):
        with make_service(max_workers=2) as service:
            with ObservatoryServer(
                registry=service.registry, service=service
            ) as observatory:
                url = observatory.url
                request = urllib.request.Request(
                    f"{url}/submit",
                    data=json.dumps(BASE.to_document()).encode(),
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    submitted = json.load(response)
                assert submitted["id"] == "q0001"
                service.handle(submitted["id"]).wait(timeout=120)
                with urllib.request.urlopen(
                    f"{url}/result?id={submitted['id']}"
                ) as response:
                    result = json.load(response)
                assert result["status"] == "done"
                assert result["tenant"] == "acme"
                with urllib.request.urlopen(f"{url}/queries") as response:
                    queries = json.load(response)
                assert queries["queries"][0]["tenant"] == "acme"
                assert "cache" in queries["service"]

    def test_bad_submissions_are_4xx(self):
        with make_service(max_workers=1) as service:
            with ObservatoryServer(
                registry=service.registry, service=service
            ) as observatory:
                request = urllib.request.Request(
                    f"{observatory.url}/submit",
                    data=json.dumps({"method": "nope"}).encode(),
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as caught:
                    urllib.request.urlopen(request)
                assert caught.value.code == 400


# ----------------------------------------------------------------------
# Durability: SIGKILL a service mid-flight, recover in a fresh process.
# ----------------------------------------------------------------------

#: Three sizeable resumable queries on three distinct tenants — distinct
#: so each recovered query's private checkpointed cache holds exactly its
#: own judgments and resume stays bit-identical to an undisturbed run.
_KILL_SPECS = [
    {"method": "bdp", "k": 3, "dataset": "synthetic", "n_items": 22,
     "seed": n, "tenant": f"tenant-{n}", "cost_sla": 5_000_000}
    for n in range(3)
]

_DRIVER = """
import json, sys, time
from repro.service import QueryService, QuerySpec, run_query, spec_from_document
from repro.telemetry import MetricsRegistry

mode, state_dir = sys.argv[1], sys.argv[2]
specs = [spec_from_document(doc) for doc in json.loads(sys.argv[3])]
if mode == "baseline":
    rows = []
    for spec in specs:
        outcome = run_query(spec, registry=MetricsRegistry())
        rows.append({"topk": list(outcome.topk), "cost": outcome.cost,
                     "rounds": outcome.rounds})
    print(json.dumps(rows))
elif mode == "start":
    service = QueryService(max_workers=3, state_dir=state_dir,
                           registry=MetricsRegistry())
    for spec in specs:
        service.submit(spec)
    print("submitted", flush=True)
    time.sleep(300)
elif mode == "recover":
    service = QueryService(max_workers=3, state_dir=state_dir,
                           registry=MetricsRegistry())
    revived = service.recover()
    rows = {}
    for handle in revived:
        outcome = handle.result(timeout=300)
        rows[handle.id] = {"topk": list(outcome.topk), "cost": outcome.cost,
                           "rounds": outcome.rounds,
                           "resumed": bool(outcome.extras.get("resumed"))}
    service.close()
    print(json.dumps(rows))
"""


def _driver_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("CROWD_TOPK_FAULT_RATE", None)  # the queries must be reproducible
    return env


def _run_driver(mode: str, state_dir: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, state_dir, json.dumps(_KILL_SPECS)],
        capture_output=True, text=True, env=_driver_env(), timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestKillAndRecover:
    def test_sigkill_with_three_in_flight_queries(self, tmp_path):
        """The tentpole durability scenario: a service with three running
        queries dies without warning; a fresh process recovers all three
        from their spec+checkpoint pairs and finishes them with the exact
        top-k, cost and rounds of never having been killed."""
        state_dir = str(tmp_path / "svc")
        baseline = json.loads(_run_driver("baseline", state_dir))

        proc = subprocess.Popen(
            [sys.executable, "-c", _DRIVER, "start", state_dir,
             json.dumps(_KILL_SPECS)],
            stdout=subprocess.PIPE, text=True, env=_driver_env(),
        )
        try:
            assert proc.stdout.readline().strip() == "submitted"
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                names = os.listdir(state_dir)
                if sum(name.endswith(".ckpt") for name in names) == 3:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("checkpoints never appeared")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        names = os.listdir(state_dir)
        finished = [n for n in names if n.endswith(".result.json")]
        assert not finished, f"queries finished before the kill: {finished}"

        recovered = json.loads(_run_driver("recover", state_dir))
        assert len(recovered) == 3
        for row, expected in zip(
            (recovered[f"q{n + 1:04d}"] for n in range(3)), baseline
        ):
            assert row["resumed"]
            assert row["topk"] == expected["topk"]
            assert row["cost"] == expected["cost"]
            assert row["rounds"] == expected["rounds"]
