"""Experiment harness: params, reporting, runner, and tiny end-to-end sweeps."""

import numpy as np
import pytest

from repro.errors import AlgorithmError, ConfigError
from repro.experiments import (
    ExperimentParams,
    Report,
    run_infimum,
    run_method,
    run_methods,
)
from repro.experiments.runner import MethodStats, RunRecord
from repro.experiments.scalability import run_scalability

# A tiny cell every runner test shares: 20 jester items, 2 runs.
SMALL = dict(dataset="jester", n_items=20, k=3, n_runs=2, seed=0)


class TestParams:
    def test_defaults_match_table6(self):
        params = ExperimentParams()
        assert params.k == 10
        assert params.confidence == 0.98
        assert params.budget == 1000
        assert params.batch_size == 30
        assert params.sweet_spot == 1.5

    def test_config_derivation(self):
        params = ExperimentParams(confidence=0.9, budget=500)
        config = params.comparison_config()
        assert config.confidence == 0.9
        assert config.budget == 500
        spr = params.spr_config()
        assert spr.comparison == config

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentParams(k=0)
        with pytest.raises(ConfigError):
            ExperimentParams(n_items=10, k=10)
        with pytest.raises(ConfigError):
            ExperimentParams(n_runs=0)

    def test_with_copies(self):
        params = ExperimentParams()
        assert params.with_(k=5).k == 5
        assert params.k == 10


class TestReport:
    def test_row_width_validated(self):
        report = Report(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            report.add_row("bad", [1])

    def test_text_rendering(self):
        report = Report(title="My table", columns=["x=1", "x=2"])
        report.add_row("method", [1234, 0.567])
        report.add_note("hello")
        text = report.to_text()
        assert "My table" in text
        assert "1,234" in text
        assert "0.567" in text
        assert "note: hello" in text

    def test_nan_renders_as_dash(self):
        report = Report(title="t", columns=["c"])
        report.add_row("r", [float("nan")])
        assert "-" in report.to_text()


class TestRunner:
    def test_run_method_aggregates(self):
        stats = run_method("spr", ExperimentParams(**SMALL))
        assert isinstance(stats, MethodStats)
        assert stats.n_runs == 2
        assert stats.mean_cost > 0
        assert 0.0 <= stats.mean_ndcg <= 1.0
        assert all(isinstance(r, RunRecord) for r in stats.runs)

    def test_deterministic_given_seed(self):
        a = run_method("tournament", ExperimentParams(**SMALL))
        b = run_method("tournament", ExperimentParams(**SMALL))
        assert a.mean_cost == b.mean_cost
        assert a.mean_ndcg == b.mean_ndcg

    def test_different_seeds_differ(self):
        a = run_method("spr", ExperimentParams(**SMALL))
        b = run_method("spr", ExperimentParams(**{**SMALL, "seed": 9}))
        assert a.mean_cost != b.mean_cost

    def test_unknown_method_rejected(self):
        with pytest.raises(AlgorithmError):
            run_method("bogosort", ExperimentParams(**SMALL))

    def test_run_methods_covers_all(self):
        results = run_methods(["spr", "heapsort"], ExperimentParams(**SMALL))
        assert set(results) == {"spr", "heapsort"}

    def test_infimum_below_methods(self):
        params = ExperimentParams(**SMALL)
        infimum = run_infimum(params)
        spr = run_method("spr", params)
        assert infimum.mean_cost <= spr.mean_cost

    def test_subset_ground_truth_used(self):
        # NDCG must be computed against the subset's own ground truth:
        # a perfect run on a subset scores 1.0 even though global ranks differ.
        stats = run_method(
            "spr",
            ExperimentParams(dataset="jester", n_items=15, k=2, n_runs=2, seed=1),
        )
        assert stats.mean_ndcg > 0.5


class TestScalabilitySweep:
    def test_reports_shapes(self):
        params = ExperimentParams(**SMALL)
        tmc, latency = run_scalability(
            "k", params, values=(2, 3), methods=("spr", "quickselect")
        )
        assert tmc.columns == ["k=2", "k=3"]
        assert set(tmc.rows) == {"spr", "quickselect", "infimum"}
        assert set(latency.rows) == set(tmc.rows)

    def test_invalid_cells_skipped(self):
        params = ExperimentParams(dataset="jester", k=10, n_runs=1, seed=0)
        tmc, _ = run_scalability(
            "n", params, values=(5, 50), methods=("quickselect",),
            include_infimum=False,
        )
        assert tmc.columns == ["N=50"]  # N=5 < k is dropped

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ConfigError):
            run_scalability("zoom", ExperimentParams(**SMALL))


class TestReportExports:
    def _report(self):
        report = Report(title="t", columns=["a", "b"])
        report.add_row("r1", [1, 2.5])
        report.add_row("r2", [float("nan"), 4])
        report.add_note("n1")
        return report

    def test_to_dict_roundtrip(self):
        data = self._report().to_dict()
        assert data["title"] == "t"
        assert data["columns"] == ["a", "b"]
        assert data["rows"]["r1"] == [1, 2.5]
        assert data["notes"] == ["n1"]

    def test_to_json_serializes_nan_as_null(self):
        import json

        payload = json.loads(self._report().to_json())
        assert payload["rows"]["r2"][0] is None
        assert payload["rows"]["r1"] == [1, 2.5]

    def test_to_csv(self):
        text = self._report().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "label,a,b"
        assert lines[1] == "r1,1,2.5"


class TestNSweepDeduplication:
    def test_oversized_subset_values_collapse_to_all(self):
        params = ExperimentParams(dataset="jester", k=3, n_runs=1, seed=0)
        tmc, _ = run_scalability(
            "n", params, values=(50, 150, 800, None),
            methods=("quickselect",), include_infimum=False,
        )
        # jester has 100 items: 150, 800 and None all mean "All" → one column
        assert tmc.columns == ["N=50", "N=All"]
