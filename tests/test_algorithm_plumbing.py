"""Algorithm plumbing: the shared result type, validation, and adapters."""

import pytest

from repro.algorithms import ALGORITHMS
from repro.algorithms.base import TopKOutcome, measured, validate_query
from repro.algorithms.spr_adapter import spr_adapter
from repro.errors import AlgorithmError
from tests.conftest import make_latent_session


class TestValidateQuery:
    def test_normalizes_ints(self):
        assert validate_query([1.0, 2.0], 1) == [1, 2]  # numpy/int-likes

    def test_rejects_duplicates(self):
        with pytest.raises(AlgorithmError):
            validate_query([1, 1], 1)

    def test_rejects_empty(self):
        with pytest.raises(AlgorithmError):
            validate_query([], 1)

    def test_rejects_bad_k(self):
        with pytest.raises(AlgorithmError):
            validate_query([1, 2], 0)
        with pytest.raises(AlgorithmError):
            validate_query([1, 2], 3)


class TestMeasured:
    def test_ledger_delta(self):
        session = make_latent_session([0.0, 5.0], sigma=0.5)
        before = session.spent()
        session.compare(1, 0)
        outcome = measured("demo", session, [1], before, {"note": "x"})
        assert isinstance(outcome, TopKOutcome)
        assert outcome.method == "demo"
        assert outcome.topk == (1,)
        assert outcome.cost == session.total_cost
        assert outcome.extras == {"note": "x"}

    def test_default_extras_are_isolated(self):
        session = make_latent_session([0.0, 5.0], sigma=0.5)
        a = measured("m", session, [1], (0, 0))
        b = measured("m", session, [1], (0, 0))
        a.extras["k"] = 1
        assert b.extras == {}


class TestRegistry:
    def test_registry_names(self):
        assert set(ALGORITHMS) == {
            "spr", "tournament", "heapsort", "quickselect", "pbr", "fullsort",
            "bdp",
        }

    def test_all_registry_entries_share_signature(self):
        session = make_latent_session(
            [float(i) for i in range(12)], sigma=0.3, min_workload=5, budget=100
        )
        for name, algorithm in ALGORITHMS.items():
            outcome = algorithm(session, list(range(12)), 2)
            assert outcome.method == name
            assert len(outcome.topk) == 2


class TestSPRAdapter:
    def test_extras_expose_diagnostics(self):
        session = make_latent_session(
            [float(i) for i in range(20)], sigma=0.3, min_workload=5, budget=100
        )
        outcome = spr_adapter(session, list(range(20)), 3)
        assert "plan_x" in outcome.extras
        assert "reference" in outcome.extras
        sizes = outcome.extras["partition_sizes"]
        assert sum(sizes) == 20

    def test_derives_config_from_session(self):
        session = make_latent_session(
            [float(i) for i in range(20)],
            sigma=0.3, min_workload=5, budget=100, confidence=0.9,
        )
        outcome = spr_adapter(session, list(range(20)), 3)
        assert list(outcome.topk) == [19, 18, 17]
