"""Property-based tests, round 2: cross-subsystem invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cache import JudgmentCache
from repro.core.items import ItemSet
from repro.metrics import spearman_footrule
from repro.persistence import cache_from_json, cache_to_json
from repro.stats.planning import predict_infimum_cost, predict_pair_workload
from repro.stats.workload import workload_ratio

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPersistenceProperties:
    @given(
        bags=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
                st.lists(finite_floats, min_size=1, max_size=30),
            ),
            min_size=0,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_lossless(self, bags):
        cache = JudgmentCache()
        for a, b, values in bags:
            if a == b:
                continue
            cache.append(a, b, np.asarray(values))
        loaded = cache_from_json(cache_to_json(cache))
        assert sorted(loaded.pairs()) == sorted(cache.pairs())
        for a, b in cache.pairs():
            assert np.allclose(loaded.bag(a, b), cache.bag(a, b))


class TestPlanningProperties:
    @given(
        gap=st.floats(min_value=1e-6, max_value=100.0),
        sigma=st.floats(min_value=1e-3, max_value=100.0),
        alpha=st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=80, deadline=None)
    def test_pair_workload_respects_clamps(self, gap, sigma, alpha):
        w = predict_pair_workload(gap, sigma, alpha, min_workload=30, budget=1000)
        assert 30.0 <= w <= 1000.0

    @given(
        gap=st.floats(min_value=1e-3, max_value=10.0),
        sigma=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_workload_monotone_in_gap(self, gap, sigma):
        narrow = predict_pair_workload(gap, sigma, 0.05, min_workload=2, budget=None)
        wide = predict_pair_workload(2 * gap, sigma, 0.05, min_workload=2, budget=None)
        assert wide <= narrow + 1e-9

    @given(
        scores=st.lists(finite_floats, min_size=3, max_size=40, unique=True),
        alpha=st.floats(min_value=0.02, max_value=0.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_infimum_prediction_positive_and_bounded(self, scores, alpha):
        k = max(1, len(scores) // 3)
        total = predict_infimum_cost(
            scores, k, 1.0, alpha, min_workload=30, budget=1000
        )
        pairs = (k - 1) + (len(scores) - k)
        assert 30.0 * pairs <= total <= 1000.0 * pairs

    @given(
        mu=st.floats(min_value=0.01, max_value=5.0),
        sigma=st.floats(min_value=0.1, max_value=5.0),
        alpha=st.floats(min_value=0.01, max_value=0.2),
    )
    @settings(max_examples=80, deadline=None)
    def test_binary_never_cheaper(self, mu, sigma, alpha):
        # Appendix D's claim as a property over the whole parameter box.
        assert workload_ratio(mu, sigma, alpha) > 1.0


class TestFootruleProperties:
    @st.composite
    def items_and_permutation(draw):
        n = draw(st.integers(min_value=2, max_value=20))
        scores = draw(
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=n, max_size=n, unique=True,
            )
        )
        perm = draw(st.permutations(list(range(n))))
        return ItemSet(ids=np.arange(n), scores=np.asarray(scores)), perm

    @given(data=items_and_permutation())
    @settings(max_examples=80, deadline=None)
    def test_bounded_and_zero_iff_sorted(self, data):
        items, perm = data
        value = spearman_footrule(items, perm)
        assert 0.0 <= value <= 1.0
        ideal = sorted(perm, key=lambda i: items.rank_of(i))
        assert (value == 0.0) == (list(perm) == ideal)

    @given(data=items_and_permutation())
    @settings(max_examples=50, deadline=None)
    def test_reversal_is_maximal(self, data):
        items, perm = data
        ideal = sorted(perm, key=lambda i: items.rank_of(i))
        assert spearman_footrule(items, ideal[::-1]) == pytest.approx(1.0)


class TestInsertItemProperty:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        arrival=st.permutations(list(range(12))),
    )
    @settings(max_examples=25, deadline=None)
    def test_streaming_matches_batch_on_clean_oracle(self, seed, arrival):
        """Feeding items one at a time into insert_item must converge to
        the true top-k when comparisons are reliable."""
        from repro.extensions import insert_item
        from tests.conftest import make_latent_session

        scores = [float(i) for i in range(12)]
        session = make_latent_session(
            scores, sigma=0.2, seed=seed, min_workload=4, budget=100,
            batch_size=10,
        )
        topk = [int(arrival[0])]
        for raw in arrival[1:]:
            item = int(raw)
            full = len(topk) >= 4
            result = insert_item(session, topk, item, evict=full)
            topk = list(result.topk)
            if not result.accepted and not full:
                # While the list is still filling, a rejected item belongs
                # at its tail (it just lost to the current boundary).
                topk.append(item)
        assert set(topk) == {11, 10, 9, 8}
        assert topk == sorted(topk, reverse=True)