"""Unit tests for the empirical guarantee checker.

The acceptance-grade run (200 replications per cell) lives behind
``crowd-topk validate --suite guarantees`` and the nightly CI leg; these
tests pin the machinery around it — the Wilson interval algebra, the
pass/fail framing, determinism across worker counts, and the telemetry
it emits — at replication counts small enough for the tier-1 suite.
"""

from __future__ import annotations

import math

import pytest

from repro.core.spr import expected_precision_lower_bound
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry, use_registry
from repro.validation import run_guarantee_suite, wilson_interval
from repro.validation import guarantees as guarantees_mod
from repro.validation.guarantees import (
    DEFAULT_ALPHAS,
    _WILSON_Z,
    _max_failure_rate,
    _ReplicationOutcome,
)


def _counter_map(registry: MetricsRegistry) -> dict:
    return {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in registry.snapshot()["counters"]
    }


class TestWilsonInterval:
    def test_matches_closed_form(self):
        failures, trials = 3, 200
        p = failures / trials
        z2n = _WILSON_Z * _WILSON_Z / trials
        center = p + z2n / 2.0
        margin = _WILSON_Z * math.sqrt(
            p * (1.0 - p) / trials + z2n / (4.0 * trials)
        )
        low, high = wilson_interval(failures, trials)
        assert low == pytest.approx((center - margin) / (1.0 + z2n))
        assert high == pytest.approx((center + margin) / (1.0 + z2n))

    def test_zero_failures_has_positive_upper_bound(self):
        # The whole point of Wilson over Wald: 0/n is not "certainty".
        low, high = wilson_interval(0, 200)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.05
        assert wilson_interval(0, 5)[1] > 0.4  # tiny n stays inconclusive

    def test_bounds_stay_in_unit_interval(self):
        for failures, trials in [(0, 1), (1, 1), (5, 5), (1, 3)]:
            low, high = wilson_interval(failures, trials)
            assert 0.0 <= low <= failures / trials <= high <= 1.0

    def test_mirror_symmetry(self):
        # Successes and failures are interchangeable labels.
        low, high = wilson_interval(3, 20)
        mlow, mhigh = wilson_interval(17, 20)
        assert mlow == pytest.approx(1.0 - high)
        assert mhigh == pytest.approx(1.0 - low)

    def test_upper_bound_shrinks_with_trials(self):
        highs = [wilson_interval(0, n)[1] for n in (10, 50, 200, 1000)]
        assert all(a > b for a, b in zip(highs, highs[1:]))

    def test_non_default_confidence_widens(self):
        low95, high95 = wilson_interval(2, 100)
        low99, high99 = wilson_interval(2, 100, confidence=0.99)
        assert low99 <= low95 and high99 >= high95

    @pytest.mark.parametrize(
        "failures, trials, confidence",
        [(0, 0, 0.95), (-1, 10, 0.95), (11, 10, 0.95), (1, 10, 1.5)],
    )
    def test_rejects_invalid_inputs(self, failures, trials, confidence):
        with pytest.raises(ConfigError):
            wilson_interval(failures, trials, confidence)


class TestGuaranteeFraming:
    def test_spr_bound_comes_from_section_5_4(self):
        for alpha in DEFAULT_ALPHAS:
            expected = 1.0 - expected_precision_lower_bound(alpha, 1.5)
            assert _max_failure_rate("spr_recall", alpha) == pytest.approx(expected)
            assert _max_failure_rate("comparison", alpha) == alpha
            assert _max_failure_rate("partition", alpha) == alpha

    def test_unknown_check_rejected(self):
        with pytest.raises(ConfigError, match="unknown guarantee check"):
            run_guarantee_suite(checks=("typo",), replications=1)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1])
    def test_bad_alpha_rejected(self, alpha):
        with pytest.raises(ConfigError, match="alpha"):
            run_guarantee_suite(alphas=(alpha,), replications=1)

    def test_zero_replications_rejected(self):
        with pytest.raises(ConfigError, match="replications"):
            run_guarantee_suite(replications=0)


class TestSuiteExecution:
    REPS = 8  # enough for real trials, small enough for tier 1

    def test_report_structure_and_telemetry(self):
        with use_registry(MetricsRegistry()) as registry:
            report = run_guarantee_suite(
                alphas=(0.05,), replications=self.REPS, checks=("comparison",)
            )
        assert len(report.checks) == 1
        check = report.checks[0]
        assert check.replications == self.REPS
        assert check.trials >= self.REPS - check.extras["ties"]
        assert 0 <= check.failures <= check.trials
        assert check.empirical_rate == check.failures / check.trials
        assert check.passed == (check.wilson_high <= check.max_failure_rate)
        payload = report.to_dict()
        assert payload["suite"] == "guarantees"
        assert payload["checks"][0]["ties"] == check.extras["ties"]
        counters = _counter_map(registry)
        key = ("validation_replications_total", (("check", "comparison"),))
        assert counters[key] == self.REPS
        # The merged per-replication crowd metrics land here too.
        assert counters[("crowd_comparisons_total", ())] >= self.REPS
        spans = [s["name"] for s in registry.snapshot()["spans"]]
        assert "validation.guarantees" in spans

    def test_same_seed_reproduces_bit_for_bit(self):
        kwargs = dict(alphas=(0.1,), replications=self.REPS, checks=("comparison",))
        with use_registry(MetricsRegistry()):
            first = run_guarantee_suite(seed=3, **kwargs)
        with use_registry(MetricsRegistry()):
            second = run_guarantee_suite(seed=3, **kwargs)
            shifted = run_guarantee_suite(seed=4, **kwargs)
        assert first.to_dict() == second.to_dict()
        assert first.to_dict() != shifted.to_dict()

    def test_parallel_matches_serial_including_telemetry(self):
        kwargs = dict(alphas=(0.05,), replications=6, checks=("comparison",))
        with use_registry(MetricsRegistry()) as serial_reg:
            serial = run_guarantee_suite(n_jobs=1, **kwargs)
        with use_registry(MetricsRegistry()) as pooled_reg:
            pooled = run_guarantee_suite(n_jobs=2, **kwargs)
        assert serial.to_dict() == pooled.to_dict()
        assert _counter_map(serial_reg) == _counter_map(pooled_reg)

    def test_breach_is_reported_not_raised(self, monkeypatch):
        # A scenario that always fails must flip the cell and the suite to
        # FAIL and bump the suite-failure counter — never raise.
        def always_wrong(alpha, rng):
            return _ReplicationOutcome(trials=1, failures=1, cost=0, ties=0)

        monkeypatch.setitem(guarantees_mod._SCENARIOS, "comparison", always_wrong)
        with use_registry(MetricsRegistry()) as registry:
            report = run_guarantee_suite(
                alphas=(0.05,), replications=5, checks=("comparison",)
            )
        check = report.checks[0]
        assert check.failures == check.trials == 5
        assert check.wilson_high > check.max_failure_rate
        assert not check.passed and not report.passed
        assert "FAIL" in report.to_text()
        counters = _counter_map(registry)
        assert counters[("validation_suite_failures_total", (("suite", "guarantees"),))] == 1
        assert counters[("validation_guarantee_failures_total", (("check", "comparison"),))] == 5
