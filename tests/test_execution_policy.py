"""ExecutionPolicy: one documented resolution order over three legacy knobs."""

import os
import warnings

import pytest

from repro.config import ComparisonConfig
from repro.errors import ConfigError
from repro.execution import (
    DEFAULT_EXECUTION,
    ExecutionPolicy,
    execution_policy_from_dict,
)
from repro.experiments.parallel import ENGINE_ENV, use_engine, use_jobs


class TestGroupEngineResolution:
    def test_library_default_is_racing(self):
        assert DEFAULT_EXECUTION.resolve_group_engine() == "racing"

    def test_legacy_config_spelling_decides_when_policy_silent(self):
        config = ComparisonConfig(group_engine="sequential")
        assert DEFAULT_EXECUTION.resolve_group_engine(config) == "sequential"

    def test_explicit_policy_beats_the_config(self):
        policy = ExecutionPolicy(group_engine="racing")
        config = ComparisonConfig(group_engine="sequential")
        assert policy.resolve_group_engine(config) == "racing"

    def test_apply_to_config_rewrites_only_on_disagreement(self):
        config = ComparisonConfig(group_engine="racing")
        assert DEFAULT_EXECUTION.apply_to_config(config) is config
        rewritten = ExecutionPolicy(group_engine="sequential").apply_to_config(
            config
        )
        assert rewritten.group_engine == "sequential"
        assert rewritten.confidence == config.confidence


class TestRunEngineResolution:
    def test_library_default_is_pool(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert DEFAULT_EXECUTION.resolve_run_engine() == "pool"

    def test_legacy_keyword_decides_when_policy_silent(self):
        assert DEFAULT_EXECUTION.resolve_run_engine("lattice") == "lattice"

    def test_explicit_policy_beats_the_keyword(self):
        policy = ExecutionPolicy(run_engine="lattice")
        assert policy.resolve_run_engine("pool") == "lattice"

    def test_keyword_beats_the_ambient_installation(self):
        with use_engine("lattice"):
            assert DEFAULT_EXECUTION.resolve_run_engine("pool") == "pool"

    def test_ambient_installation_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "pool")
        with use_engine("lattice"):
            assert DEFAULT_EXECUTION.resolve_run_engine() == "lattice"

    def test_environment_decides_last(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "lattice")
        assert DEFAULT_EXECUTION.resolve_run_engine() == "lattice"


class TestJobsResolution:
    def test_library_default_is_serial(self):
        assert DEFAULT_EXECUTION.resolve_jobs() == 1

    def test_explicit_policy_beats_the_keyword(self):
        assert ExecutionPolicy(n_jobs=3).resolve_jobs(2) == 3

    def test_keyword_beats_the_ambient_installation(self):
        with use_jobs(4):
            assert DEFAULT_EXECUTION.resolve_jobs(2) == 2

    def test_ambient_installation_decides_when_both_silent(self):
        with use_jobs(4):
            assert DEFAULT_EXECUTION.resolve_jobs() == 4

    def test_zero_expands_to_cpu_count(self):
        expanded = ExecutionPolicy(n_jobs=0).resolve_jobs()
        assert expanded >= 1
        assert expanded == (os.cpu_count() or 1)


class TestValidationAndSerialization:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_engine": "warp"},
            {"run_engine": "thread"},
            {"n_jobs": -1},
            {"n_jobs": True},
            {"n_jobs": 1.5},
        ],
    )
    def test_bad_fields_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            ExecutionPolicy(**kwargs)

    def test_document_round_trip(self):
        policy = ExecutionPolicy(
            group_engine="sequential", run_engine="lattice", n_jobs=2
        )
        assert execution_policy_from_dict(policy.to_document()) == policy

    def test_empty_document_is_the_default(self):
        assert execution_policy_from_dict({}) == DEFAULT_EXECUTION

    def test_with_validates(self):
        assert DEFAULT_EXECUTION.with_(n_jobs=2).n_jobs == 2
        with pytest.raises(ConfigError):
            DEFAULT_EXECUTION.with_(run_engine="warp")


class TestLegacySpellingsStayWarningFree:
    def test_no_deprecation_warnings_from_legacy_knobs(self, monkeypatch):
        # The legacy spellings are deprecated in documentation only: CI
        # legs drive whole suites through them, so they must stay silent.
        monkeypatch.setenv(ENGINE_ENV, "lattice")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = ComparisonConfig(group_engine="sequential")
            DEFAULT_EXECUTION.apply_to_config(config)
            DEFAULT_EXECUTION.resolve_run_engine("pool")
            with use_engine("pool"), use_jobs(2):
                DEFAULT_EXECUTION.resolve_run_engine()
                DEFAULT_EXECUTION.resolve_jobs()
