"""Ranking adverse drug reactions (ADRs) by severity — the paper's medical
motivation (Gottlieb et al., JMIR 2015).

Medical crowdsourcing has two complications this example models
explicitly:

* judgments arrive on a coarse Likert scale (workers pick one of 8
  preference levels, not a continuous slider), handled by a
  record-database-free quantizing oracle; and
* a fraction of workers answer carelessly, handled by the contamination
  noise model — the confidence machinery must absorb them by buying more
  judgments, not by getting confidently wrong.

Run:  python examples/adr_severity_ranking.py
"""

import numpy as np

from repro import ComparisonConfig, CrowdSession, SPRConfig, spr_topk
from repro.crowd.oracle import JudgmentOracle, LatentScoreOracle
from repro.crowd.workers import CarelessWorkerNoise

# Severity on an arbitrary latent scale (higher = more severe).
ADRS = {
    "anaphylaxis": 9.6,
    "liver failure": 9.4,
    "cardiac arrhythmia": 8.8,
    "seizure": 8.5,
    "internal bleeding": 8.3,
    "severe depression": 7.6,
    "kidney impairment": 7.4,
    "persistent vomiting": 6.2,
    "fainting": 5.8,
    "migraine": 4.9,
    "insomnia": 3.8,
    "skin rash": 3.2,
    "dry mouth": 2.1,
    "mild nausea": 1.8,
    "drowsiness": 1.5,
}


class LikertQuantizedOracle(JudgmentOracle):
    """Wraps a continuous oracle and snaps answers to an 8-point scale."""

    LEVELS = np.array([-7, -5, -3, -1, 1, 3, 5, 7], dtype=float) / 7.0

    def __init__(self, base: JudgmentOracle, scale: float) -> None:
        self._base = base
        self._scale = scale
        self.bounds = (-1.0, 1.0)

    def _quantize(self, raw: np.ndarray) -> np.ndarray:
        clipped = np.clip(raw / self._scale, -1.0, 1.0)
        idx = np.abs(clipped[..., None] - self.LEVELS).argmin(axis=-1)
        return self.LEVELS[idx]

    def draw(self, i, j, size, rng):
        return self._quantize(self._base.draw(i, j, size, rng))

    def draw_pairs(self, left, right, size, rng):
        return self._quantize(self._base.draw_pairs(left, right, size, rng))


def main() -> None:
    names = list(ADRS)
    severity = np.array([ADRS[name] for name in names])
    workers = CarelessWorkerNoise(sigma=1.6, careless_rate=0.15, spread=6.0)
    oracle = LikertQuantizedOracle(
        LatentScoreOracle(severity, workers), scale=8.0
    )

    config = ComparisonConfig(confidence=0.95, budget=3000, min_workload=30)
    session = CrowdSession(oracle, config, seed=3)
    result = spr_topk(
        session, list(range(len(names))), k=5, config=SPRConfig(comparison=config)
    )

    truth = sorted(names, key=lambda n: -ADRS[n])[:5]
    print("5 most severe ADRs (crowd-judged, 15% careless workers):")
    for position, item in enumerate(result.topk, start=1):
        marker = "✓" if names[item] in truth else "✗"
        print(f"  {position}. {names[item]:22s} {marker}")
    print(f"\ncost: {session.total_cost:,} Likert microtasks, "
          f"{session.total_rounds} batch rounds")
    print("every pairwise verdict carries a 95% confidence guarantee — the "
          "careless workers only made the query more expensive.")


if __name__ == "__main__":
    main()
