"""Persisting crowd judgments across queries — pay for each microtask once.

§5.3 of the paper: all human feedback is stored and reusable.  This
example runs a top-3 query, persists the judgment bags, then answers a
*top-5* query in a "new session" (think: tomorrow's process) — every pair
already judged replays for free; only genuinely new evidence is bought.

Run:  python examples/resume_with_cache.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ComparisonConfig, CrowdSession, LatentScoreOracle, spr_topk
from repro.crowd.workers import GaussianNoise
from repro.persistence import load_cache, save_cache

SCORES = np.array([3.1, 7.4, 5.2, 9.0, 1.8, 6.6, 8.2, 4.4, 2.9, 7.9, 5.8, 6.1])


def fresh_session(seed: int) -> CrowdSession:
    oracle = LatentScoreOracle(SCORES, GaussianNoise(1.0))
    return CrowdSession(
        oracle,
        ComparisonConfig(confidence=0.95, budget=500, min_workload=10),
        seed=seed,
    )


def main() -> None:
    state_file = Path(tempfile.mkdtemp()) / "judgments.npz"

    # Day 1: top-3 query.
    day1 = fresh_session(seed=1)
    result1 = spr_topk(day1, list(range(len(SCORES))), k=3)
    print(f"day 1: top-3 = {list(result1.topk)}, "
          f"cost = {day1.total_cost:,} microtasks")
    save_cache(day1.cache, state_file)
    print(f"        persisted {day1.cache.total_samples:,} judgments "
          f"({day1.cache.pair_count} pairs) to {state_file.name}")

    # Day 2, new process: top-5 over the same items, warm-started.
    day2 = fresh_session(seed=2)
    day2.cache = load_cache(state_file)
    day2.comparator.cache = day2.cache
    result2 = spr_topk(day2, list(range(len(SCORES))), k=5)
    print(f"day 2: top-5 = {list(result2.topk)}, "
          f"cost = {day2.total_cost:,} new microtasks")

    # Control: the same top-5 query cold.
    cold = fresh_session(seed=2)
    spr_topk(cold, list(range(len(SCORES))), k=5)
    saved = cold.total_cost - day2.total_cost
    print(f"cold-start control cost = {cold.total_cost:,} — warm start "
          f"saved {saved:,} microtasks ({saved / cold.total_cost:.0%})")


if __name__ == "__main__":
    main()
