"""The paper's motivating example: the best 3 soccer players of the year.

Builds a custom item universe (no dataset required — just hidden quality
scores and a worker-noise model), then shows the property that motivates
the whole paper: the workload a pair needs is inversely related to how
close the two items are.  Deciding Messi vs Ronaldo takes hundreds of
microtasks; Messi vs a mid-table striker resolves at the cold-start
minimum.  SPR exploits exactly that asymmetry.

Run:  python examples/best_soccer_players.py
"""

import numpy as np

from repro import (
    ComparisonConfig,
    CrowdSession,
    LatentScoreOracle,
    SPRConfig,
    spr_topk,
)
from repro.crowd.workers import GaussianNoise

# Hidden "true quality" — the crowd never sees these numbers, only noisy
# pairwise preferences whose mean tracks the differences.
PLAYERS = {
    "Messi": 9.70,
    "Ronaldo": 9.55,  # nearly tied with Messi: the expensive comparison
    "Lewandowski": 9.10,
    "De Bruyne": 8.90,
    "Mbappe": 8.85,
    "Salah": 8.70,
    "Van Dijk": 8.40,
    "Kane": 8.30,
    "Modric": 8.10,
    "Martial": 7.20,  # promising, but an easy judgment against Messi
    "Midfield regular": 6.00,
    "Solid defender": 5.80,
    "Backup keeper": 5.00,
    "Youth prospect": 4.20,
}


def main() -> None:
    names = list(PLAYERS)
    scores = np.array([PLAYERS[name] for name in names])
    oracle = LatentScoreOracle(scores, GaussianNoise(sigma=1.2))
    config = ComparisonConfig(confidence=0.98, budget=2000, min_workload=30)
    session = CrowdSession(oracle, config, seed=5)

    print("single comparisons first — workload tracks difficulty:")
    for left, right in [("Messi", "Ronaldo"), ("Messi", "Martial")]:
        record = session.compare(names.index(left), names.index(right))
        verdict = names[record.winner] if record.winner is not None else "tie"
        print(
            f"  {left:6s} vs {right:8s}: winner={verdict:7s} "
            f"workload={record.workload:4d} microtasks "
            f"(mean preference {record.mean:+.2f})"
        )

    # Fresh session so the query pays for everything itself.
    session = CrowdSession(oracle, config, seed=11)
    result = spr_topk(
        session, list(range(len(names))), k=3, config=SPRConfig(comparison=config)
    )

    print("\nbest 3 players of the year (crowd-judged):")
    for position, item in enumerate(result.topk, start=1):
        print(f"  {position}. {names[item]}")
    print(f"\ntotal cost: {session.total_cost:,} microtasks "
          f"(~US${session.total_cost * 0.001:.2f} at 0.1 cent each), "
          f"{session.total_rounds} batch rounds")


if __name__ == "__main__":
    main()
