"""Plan → run → audit: a deployment workflow end to end.

1. **Plan**: turn requirements (top-10 of 150 items, ≥0.6 precision,
   ≤US$60) into a configuration using the §5.4 bound and the Lemma-1 cost
   model.
2. **Run**: execute SPR under that configuration with a query trace
   attached.
3. **Audit**: reconcile the bill — phase totals, most expensive
   comparisons, dollars and projected wall clock.

Run:  python examples/plan_audit_deploy.py
"""

import numpy as np

from repro import CrowdSession, LatentScoreOracle, SPRConfig, spr_topk
from repro.crowd.timeline import project_wall_clock
from repro.crowd.workers import GaussianNoise
from repro.extensions import session_bill
from repro.planner import plan_query
from repro.tracing import trace_session

N_ITEMS, K = 150, 10
SPREAD, NOISE = 2.0, 1.2


def main() -> None:
    # ---- 1. plan -----------------------------------------------------
    plan = plan_query(
        N_ITEMS, K,
        target_precision=0.6,
        dollar_budget=60.0,
        score_spread=SPREAD,
        noise_sigma=NOISE,
    )
    print("PLAN")
    print(" ", plan.summary())
    print(" ", plan.rationale, "\n")

    # ---- 2. run ------------------------------------------------------
    rng = np.random.default_rng(2)
    scores = rng.normal(0.0, SPREAD, size=N_ITEMS)
    oracle = LatentScoreOracle(scores, GaussianNoise(NOISE))
    session = CrowdSession(oracle, plan.config, seed=7)
    trace = trace_session(session)

    trace.mark_phase(session, "spr-query")
    result = spr_topk(
        session, list(range(N_ITEMS)), K, SPRConfig(comparison=plan.config)
    )
    trace.finish(session)

    truth = set(np.argsort(-scores)[:K].tolist())
    hits = len(truth & set(result.topk))
    print("RUN")
    print(f"  top-{K}: {list(result.topk)}")
    print(f"  precision vs hidden truth: {hits}/{K} "
          f"(planned floor {plan.expected_precision_floor:.2f})\n")

    # ---- 3. audit ----------------------------------------------------
    bill = session_bill(session)
    clock = project_wall_clock(session, workers=25)
    print("AUDIT")
    print(f"  {bill.summary()}")
    print(f"  predicted {plan.predicted_microtasks:,.0f} microtasks, "
          f"spent {bill.microtasks:,} "
          f"({bill.microtasks / plan.predicted_microtasks:.0%} of plan)")
    print(f"  projected duration: {clock.summary()}")
    print(f"  comparisons traced: {trace.total_comparisons:,} "
          f"({trace.cached_comparisons} served from cache)")
    print("  three most expensive comparisons:")
    for event in trace.most_expensive(3):
        print(f"    {event.line()}")


if __name__ == "__main__":
    main()
