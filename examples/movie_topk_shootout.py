"""Method shoot-out on the IMDb-shaped dataset (a mini Table 7 / Figure 12).

Runs every confidence-aware method plus the Lemma-1 infimum on a 300-movie
slice and prints TMC, latency and NDCG side by side — the fastest way to
see why the paper's answer is "use SPR".

Run:  python examples/movie_topk_shootout.py
"""

import time

from repro import ComparisonConfig, infimum_estimate, load_dataset, ndcg_at_k
from repro.algorithms import (
    heapsort_topk,
    quickselect_topk,
    spr_adapter,
    tournament_topk,
)

K = 10
N_MOVIES = 300

METHODS = [
    ("SPR", spr_adapter),
    ("TourTree", tournament_topk),
    ("HeapSort", heapsort_topk),
    ("QuickSelect", quickselect_topk),
]


def main() -> None:
    dataset = load_dataset("imdb", seed=0)
    items = dataset.sample_items(N_MOVIES)
    config = ComparisonConfig(confidence=0.98, budget=1000)

    print(f"top-{K} of {N_MOVIES} movies, 98% confidence, B=1000\n")
    print(f"{'method':12s} {'TMC':>10s} {'rounds':>8s} {'NDCG@10':>8s} {'wall':>7s}")
    for name, algorithm in METHODS:
        session = dataset.session(config, seed=5)
        started = time.perf_counter()
        outcome = algorithm(session, items.ids.tolist(), K)
        elapsed = time.perf_counter() - started
        ndcg = ndcg_at_k(items, outcome.topk, K)
        print(
            f"{name:12s} {outcome.cost:>10,d} {outcome.rounds:>8,d} "
            f"{ndcg:>8.3f} {elapsed:>6.2f}s"
        )

    session = dataset.session(config, seed=5)
    infimum = infimum_estimate(session, items, K)
    print(f"{'(infimum)':12s} {infimum.cost:>10,d} {infimum.rounds:>8,d} "
          f"{'1.000':>8s}")
    print(
        "\nThe infimum is the Lemma-1 floor (it reads the ground truth); "
        "SPR is the method that gets closest to it."
    )


if __name__ == "__main__":
    main()
