"""Quickstart: answer a crowdsourced top-k query with SPR.

Loads the synthetic Jester dataset (100 jokes, judgments are within-user
rating differences), asks for the 10 best jokes at 98% per-comparison
confidence, and prints what the query cost and how good the answer is.

Run:  python examples/quickstart.py
"""

from repro import (
    ComparisonConfig,
    SPRConfig,
    load_dataset,
    ndcg_at_k,
    spr_topk,
    top_k_precision,
)


def main() -> None:
    dataset = load_dataset("jester", seed=0)
    print(f"dataset: {dataset.description}")

    config = ComparisonConfig(confidence=0.98, budget=1000)
    session = dataset.session(config, seed=42)

    result = spr_topk(
        session,
        dataset.items.ids.tolist(),
        k=10,
        config=SPRConfig(comparison=config),
    )

    print("\ntop-10 jokes (best first):")
    for position, item in enumerate(result.topk, start=1):
        true_rank = dataset.items.rank_of(item)
        print(
            f"  {position:2d}. {dataset.items.label_of(item)}"
            f"  (true rank {true_rank})"
        )

    print("\nwhat it cost:")
    print(f"  total monetary cost : {session.total_cost:,} microtasks")
    print(f"  query latency       : {session.total_rounds:,} batch rounds")
    print(f"  comparisons run     : {session.cost.comparisons:,}")

    part = result.partition_result
    assert part is not None
    print("\nhow SPR got there:")
    print(f"  sampling plan       : x={result.selection.plan.x}, "
          f"m={result.selection.plan.m} "
          f"(sweet-spot probability {result.selection.plan.probability:.2f})")
    print(f"  final reference     : {dataset.items.label_of(part.reference)} "
          f"(true rank {dataset.items.rank_of(part.reference)})")
    print(f"  partition W/T/L     : {len(part.winners)}/{len(part.ties)}/"
          f"{len(part.losers)}, {part.reference_changes} reference change(s)")

    print("\nresult quality vs ground truth:")
    print(f"  NDCG@10   : {ndcg_at_k(dataset.items, result.topk, 10):.3f}")
    print(f"  precision : {top_k_precision(dataset.items, result.topk, 10):.2f}")


if __name__ == "__main__":
    main()
