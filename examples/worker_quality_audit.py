"""Worker-quality audit: find the spammers, ban them, requery cheaper.

The paper's crowd is exchangeable; real ones are not.  This example runs a
query through a heterogeneous workforce (20% spammers) while logging who
answered what, scores every worker against a small gold-standard set
(the iCrowd idea the paper cites), bans the low scorers, and shows the
re-run getting cheaper.

Run:  python examples/worker_quality_audit.py
"""

import numpy as np

from repro import ComparisonConfig, CrowdSession, LatentScoreOracle, spr_topk
from repro.crowd.workers import GaussianNoise
from repro.crowd.workforce import (
    Workforce,
    WorkforceOracle,
    estimate_worker_accuracy,
)

N_ITEMS = 40
K = 5


def run_query(force: Workforce, seed: int, keep_log: bool):
    scores = np.linspace(0.0, 10.0, N_ITEMS)
    base = LatentScoreOracle(scores, GaussianNoise(0.8))
    oracle = WorkforceOracle(base, force, keep_log=keep_log)
    session = CrowdSession(
        oracle,
        ComparisonConfig(confidence=0.95, budget=1500, min_workload=10),
        seed=seed,
    )
    result = spr_topk(session, list(range(N_ITEMS)), K)
    return session, oracle, result


def main() -> None:
    force = Workforce.generate(30, seed=4, spammer_rate=0.2)
    true_spammers = {p.worker_id for p in force.profiles if p.spammer}
    print(f"workforce: {len(force)} workers, {len(true_spammers)} secret spammers")

    session, oracle, result = run_query(force, seed=11, keep_log=False)
    print(f"\nquery 1 (unaudited): top-{K} = {list(result.topk)}, "
          f"cost = {session.total_cost:,}")

    # Qualification round: publish a batch of microtasks on a pair whose
    # answer is known and obvious (the classic platform honeypot).  Easy
    # gold separates cleanly: honest workers nearly always get it right,
    # spammers sit at coin-flip accuracy.
    scores = np.linspace(0.0, 10.0, N_ITEMS)
    base = LatentScoreOracle(scores, GaussianNoise(0.8))
    qualifier = WorkforceOracle(base, force, keep_log=True)
    rng = np.random.default_rng(99)
    qualifier.draw(N_ITEMS - 1, 0, 600, rng)  # best vs worst: obvious
    gold = {N_ITEMS - 1: 1, 0: N_ITEMS}
    accuracy = estimate_worker_accuracy(qualifier.log, gold, min_answers=5)
    flagged = {worker for worker, acc in accuracy.items() if acc < 0.8}
    caught = flagged & true_spammers
    print(f"audit: 600 honeypot tasks scored {len(accuracy)} workers; "
          f"flagged {len(flagged)}, of which {len(caught)} are true spammers")

    cleaned = force.without(flagged)
    session2, _, result2 = run_query(cleaned, seed=11, keep_log=False)
    print(f"\nquery 2 (audited workforce of {len(cleaned)}): "
          f"top-{K} = {list(result2.topk)}, cost = {session2.total_cost:,}")
    saved = session.total_cost - session2.total_cost
    print(f"banning flagged workers saved {saved:,} microtasks "
          f"({saved / session.total_cost:.0%})")


if __name__ == "__main__":
    main()
