#!/usr/bin/env python3
"""Run the complete paper evaluation at configurable fidelity.

The benchmark suite keeps run counts laptop-friendly; this script is the
"leave it overnight" path — it regenerates every table and figure at any
``--runs`` count (the paper uses 100) and writes all reports to a results
directory as text, JSON and CSV.

Usage::

    python scripts/run_full_evaluation.py --runs 10 --out results_full
    python scripts/run_full_evaluation.py --runs 100 --only table7 fig8
    python scripts/run_full_evaluation.py --runs 100 --jobs 0   # all CPUs

``--jobs N`` fans each experiment's independent runs out over N worker
processes (0 = one per CPU) via the parallel experiment engine; results
are bit-for-bit identical to serial runs (docs/performance.md).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import (
    ExperimentParams,
    use_jobs,
    run_accuracy,
    run_appendix_d,
    run_non_confidence,
    run_peopleage,
    run_robustness,
    run_scalability,
    run_stein_vs_student,
    run_summary,
    run_sweet_spot,
    run_table3,
    run_table4,
    run_table7,
)


def _sweep_all(vary, runs, seed):
    reports = []
    for dataset in ("imdb", "book", "jester", "photo"):
        params = ExperimentParams(dataset=dataset, n_runs=runs, seed=seed)
        reports.extend(run_scalability(vary, params))
    return reports


EXPERIMENTS = {
    "table3": lambda runs, seed: [run_table3(n_runs=max(runs // 2, 1), seed=seed)],
    "table4": lambda runs, seed: [
        run_table4(ExperimentParams(n_runs=runs, seed=seed))
    ],
    "table7": lambda runs, seed: [run_table7(n_runs=runs, seed=seed)],
    "fig8": lambda runs, seed: _sweep_all("k", runs, seed),
    "fig9": lambda runs, seed: _sweep_all("n", runs, seed),
    "fig10": lambda runs, seed: _sweep_all("confidence", runs, seed),
    "fig11": lambda runs, seed: _sweep_all("budget", runs, seed),
    "fig12": lambda runs, seed: list(run_summary(n_runs=runs, seed=seed)),
    "fig13": lambda runs, seed: [
        run_accuracy(vary, ExperimentParams(n_runs=runs, seed=seed))
        for vary in ("k", "n", "budget", "confidence")
    ],
    "fig14": lambda runs, seed: [run_non_confidence(n_runs=runs, seed=seed)],
    "fig15": lambda runs, seed: [run_appendix_d()],
    "fig16": lambda runs, seed: [run_sweet_spot(n_runs=runs, seed=seed)],
    "fig17": lambda runs, seed: [
        run_stein_vs_student(n_runs=runs, seed=seed)
    ],
    "peopleage": lambda runs, seed: [run_peopleage(n_runs=runs, seed=seed)],
    "robustness": lambda runs, seed: [run_robustness(n_runs=runs, seed=seed)],
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10, help="runs per cell")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results_full")
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPERIMENTS),
        default=None,
        help="subset of experiments (default: all)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per experiment (0 = one per CPU, "
        "default 1 = serial); results are bit-for-bit identical",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else sorted(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)
    started = time.time()
    for name in names:
        print(f"[{time.time() - started:7.0f}s] running {name} "
              f"(runs={args.runs}, jobs={args.jobs}) …", flush=True)
        with use_jobs(args.jobs):
            reports = EXPERIMENTS[name](args.runs, args.seed)
        text = "\n\n".join(report.to_text() for report in reports)
        (args.out / f"{name}.txt").write_text(text + "\n")
        for position, report in enumerate(reports):
            stem = name if len(reports) == 1 else f"{name}_{position}"
            (args.out / f"{stem}.json").write_text(report.to_json() + "\n")
            (args.out / f"{stem}.csv").write_text(report.to_csv())
        print(text)
        print()
    print(f"done in {time.time() - started:.0f}s; reports in {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
