#!/usr/bin/env python
"""CI smoke check for the live observatory.

Launches ``crowd-topk query --serve 127.0.0.1:0`` as a real subprocess,
reads the ephemeral URL it announces on stderr, and scrapes ``/metrics``
and ``/queries`` while the query is still running.  Passes only when

* the CLI exits 0 and prints its normal summary,
* both endpoints answered 200 with the right content type mid-query,
* ``/queries`` listed the running query by name, and
* a ``/metrics`` scrape exposed ``crowd_microtasks_total``.

Run from the repository root: ``python scripts/smoke_serve.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
URL_LINE = re.compile(r"observatory serving at (http://\S+)")
QUERY_NAME = "jester:spr:k=10"
STARTUP_DEADLINE_S = 60.0


def _scrape(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "query",
            "--dataset", "jester", "--method", "spr",
            "-k", "10", "--n-items", "99", "--seed", "3",
            "--serve", "127.0.0.1:0",
        ],
        cwd=ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )

    base = None
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    assert proc.stderr is not None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        match = URL_LINE.search(line)
        if match:
            base = match.group(1).rstrip("/")
            break
    if base is None:
        proc.kill()
        out, err = proc.communicate()
        print("FAIL: CLI never announced an observatory URL", file=sys.stderr)
        print(err, file=sys.stderr)
        return 1
    print(f"observatory at {base}")

    # Scrape continuously while the query runs; keep the freshest bodies.
    metrics_body = ""
    metrics_type = ""
    queries_doc: dict = {}
    scrapes = 0
    saw_microtasks = False
    while proc.poll() is None:
        try:
            status, body, ctype = _scrape(base + "/metrics")
            if status == 200:
                metrics_body, metrics_type = body, ctype
                saw_microtasks |= "crowd_microtasks_total" in body
            status, body, _ = _scrape(base + "/queries")
            if status == 200:
                queries_doc = json.loads(body)
            scrapes += 1
        except (urllib.error.URLError, ConnectionError, OSError):
            break  # server went down as the query finished
        time.sleep(0.05)

    stdout, stderr = proc.communicate(timeout=60)
    failures = []
    if proc.returncode != 0:
        failures.append(f"CLI exited {proc.returncode}:\n{stderr}")
    if "TMC:" not in stdout:
        failures.append("CLI summary missing from stdout")
    if scrapes == 0:
        failures.append("no successful scrape completed while serving")
    if "text/plain" not in metrics_type:
        failures.append(f"bad /metrics content type: {metrics_type!r}")
    if not saw_microtasks:
        failures.append("crowd_microtasks_total never appeared in /metrics")
    names = [entry.get("query") for entry in queries_doc.get("queries", [])]
    if QUERY_NAME not in names:
        failures.append(f"/queries never listed {QUERY_NAME!r}: {names}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {scrapes} live scrapes; /metrics exposed "
        f"crowd_microtasks_total; /queries tracked {QUERY_NAME!r}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
