#!/usr/bin/env python
"""Bench-trend gate: fail CI when a suite's headline metric regresses.

``scripts/bench_perf.py`` appends one JSONL line per suite execution to
``BENCH_history.jsonl``.  This script compares the newest entry of a
suite against earlier entries from the **same fingerprint** (host
platform, python version, cpu count, quick flag, workload) and exits
non-zero when the headline metric regressed beyond the allowed ratio.

The gated metrics are **load-invariant ratios**, not raw wall seconds:
shared CI runners (and shared bench hosts generally) drift 1.5-2x in
sustained CPU speed between runs, which no tolerance short of useless
can absorb.  Ratios of quantities measured inside one run — the
apply suite's per-round tax in kernel units, the lattice suite's
speedup over the interleaved sequential leg — cancel the host's speed
and expose only genuine code regressions.

Noise handling: the newest reading is compared against the *best* of
the trailing ``--window`` same-fingerprint entries, not just the single
previous one — a single bad historical run cannot mask a real
regression, and a single lucky outlier ages out of the window.  First
runs on a new fingerprint pass with a note (nothing to compare
against).

Usage (CI)::

    python scripts/bench_perf.py --quick
    python scripts/check_bench_trend.py --suite apply_path
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = _ROOT / "BENCH_history.jsonl"

#: Headline metric per suite: dotted path into the history record plus
#: the direction a *regression* moves it.  Only load-invariant ratios
#: are gated (see module docstring); suites mapped to ``None`` have no
#: such figure and the gate refuses them.
METRICS = {
    "apply_path": {
        "path": ("profile", "per_round_over_kernel"),
        "higher_is_worse": True,
        "label": "per-round tax (kernel units)",
    },
    "lattice": {
        "path": ("speedup_vs_sequential",),
        "higher_is_worse": False,
        "label": "speedup vs sequential",
    },
    "bdp": {
        "path": ("scorer_speedup",),
        "higher_is_worse": False,
        "label": "vectorized scorer speedup",
    },
    "service": {
        "path": ("overhead_ratio_service_vs_standalone",),
        "higher_is_worse": True,
        "label": "service per-query overhead ratio",
    },
    "group_engine": None,
    "fault_overhead": None,
    "parallel_runner": None,
}


def _fingerprint(record: dict) -> tuple:
    # Workload and quick flag belong in the fingerprint: a full-size run
    # on the same host is not comparable to a --quick one, so mixing
    # them would fake regressions (or hide real ones behind a faster
    # quick baseline).
    host = record.get("host", {})
    return (
        host.get("platform"),
        host.get("python"),
        host.get("cpu_count"),
        record.get("quick"),
        record.get("workload"),
    )


def _metric(record: dict, path: tuple) -> float | None:
    value = record
    for key in path:
        if not isinstance(value, dict):
            return None
        value = value.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def _load(path: pathlib.Path, suite: str) -> list[dict]:
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn line must not break the gate
        if record.get("benchmark") == suite:
            entries.append(record)
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=pathlib.Path, default=DEFAULT_HISTORY)
    parser.add_argument("--suite", default="apply_path",
                        choices=sorted(k for k, v in METRICS.items() if v))
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression vs the best "
                        "trailing same-fingerprint entry (default 0.25)")
    parser.add_argument("--window", type=int, default=5,
                        help="trailing same-fingerprint entries considered "
                        "(default 5)")
    args = parser.parse_args(argv)

    if not args.history.exists():
        print(f"trend gate: {args.history} missing — nothing to compare, "
              "passing")
        return 0
    entries = _load(args.history, args.suite)
    if not entries:
        print(f"trend gate: no {args.suite!r} entries in "
              f"{args.history.name} — passing")
        return 0

    spec = METRICS[args.suite]
    latest = entries[-1]
    latest_value = _metric(latest, spec["path"])
    if latest_value is None:
        print(f"trend gate: newest {args.suite} entry carries no metric — "
              "passing")
        return 0

    fingerprint = _fingerprint(latest)
    prior = [
        value
        for record in entries[:-1]
        if _fingerprint(record) == fingerprint
        and (value := _metric(record, spec["path"])) is not None
    ]
    if not prior:
        print(f"trend gate: first {args.suite} reading for fingerprint "
              f"{fingerprint} — baseline recorded, passing")
        return 0
    window = prior[-args.window:]
    if spec["higher_is_worse"]:
        baseline = min(window)
        ratio = latest_value / baseline if baseline else float("inf")
    else:
        baseline = max(window)
        ratio = baseline / latest_value if latest_value else float("inf")
    verdict = "ok" if ratio <= 1.0 + args.max_regression else "REGRESSION"
    print(
        f"trend gate [{args.suite}]: latest {spec['label']} "
        f"{latest_value:.4f} vs best of trailing {len(window)} "
        f"same-fingerprint entries {baseline:.4f} -> {ratio:.2f}x "
        f"({verdict}, limit {1.0 + args.max_regression:.2f}x)"
    )
    if verdict != "ok":
        print(
            "trend gate: the headline metric regressed beyond the allowed "
            "ratio; if the change is intended, say so in the PR and re-run "
            "the bench to refresh the history",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
