#!/usr/bin/env python
"""Regenerate ``tests/golden/apply_parity.json``.

Run this ONLY on a tree whose apply-path behaviour is known-good (the
fixture pins bit-for-bit parity across refactors — see
``tests/test_apply_parity.py``).  Regeneration must be justified in the
PR that does it.

Usage::

    PYTHONPATH=src:tests python scripts/gen_apply_parity_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tests"))

from test_apply_parity import GOLDEN_PATH, SEEDS, run_case  # noqa: E402


def main() -> None:
    cases = {}
    for variant in sorted(SEEDS):
        for seed in range(SEEDS[variant]):
            cases[f"{variant}:{seed}"] = run_case(variant, seed)
        print(f"{variant}: {SEEDS[variant]} seeds", file=sys.stderr)
    GOLDEN_PATH.write_text(
        json.dumps(
            {"description": "apply-path bit-parity digests", "cases": cases},
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {GOLDEN_PATH} ({len(cases)} cases)", file=sys.stderr)


if __name__ == "__main__":
    main()
