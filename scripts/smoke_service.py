#!/usr/bin/env python
"""CI smoke check for the multi-tenant query service.

Launches ``crowd-topk serve 127.0.0.1:0`` as a real subprocess, reads
the ephemeral URL it announces on stderr, submits three concurrent
queries from two tenants through ``crowd-topk submit`` subprocesses
(the full CLI → HTTP → service → worker path), scrapes ``/queries``
while they run, and waits for every submission.  Passes only when

* the serve CLI announces both the observatory URL and service
  readiness,
* all three submits exit 0 and print a ``done`` line with a top-k,
* every query completes within its cost SLA (the submit path re-raises
  SLA breaches as non-zero exits, so exit 0 *is* the SLA check),
* a ``/queries`` scrape listed the service block with both tenants, and
* a ``/metrics`` scrape exposed ``service_queries_total``.

Run from the repository root: ``python scripts/smoke_service.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import time
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
URL_LINE = re.compile(r"observatory serving at (http://\S+)")
READY_LINE = re.compile(r"query service ready")
STARTUP_DEADLINE_S = 60.0
SUBMIT_TIMEOUT_S = 180

#: Three queries, two tenants, all with generous-but-real cost SLAs.
SUBMISSIONS = [
    ("acme", "3", "0"),
    ("acme", "4", "1"),
    ("globex", "3", "2"),
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    # The smoke pins exact completion; ambient fault injection belongs to
    # the dedicated fault-injection CI leg.
    env.pop("CROWD_TOPK_FAULT_RATE", None)
    return env


def _scrape(url: str) -> dict | str:
    with urllib.request.urlopen(url, timeout=5) as response:
        body = response.read().decode("utf-8")
    if "json" in response.headers.get("Content-Type", ""):
        return json.loads(body)
    return body


def main() -> int:
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "127.0.0.1:0",
         "--workers", "3"],
        cwd=ROOT, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    failures: list[str] = []
    try:
        base = None
        ready = False
        deadline = time.monotonic() + STARTUP_DEADLINE_S
        assert serve.stderr is not None
        while time.monotonic() < deadline and not (base and ready):
            line = serve.stderr.readline()
            if not line:
                break
            match = URL_LINE.search(line)
            if match:
                base = match.group(1).rstrip("/")
            if READY_LINE.search(line):
                ready = True
        if base is None or not ready:
            print("FAIL: serve never announced URL + readiness",
                  file=sys.stderr)
            return 1
        print(f"service at {base}")

        submits = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "submit",
                 "--server", base,
                 "--method", "spr", "--dataset", "jester",
                 "-k", k, "--n-items", "60", "--seed", seed,
                 "--tenant", tenant, "--cost-sla", "500000",
                 "--wait", "--poll", "0.1"],
                cwd=ROOT, env=_env(),
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for tenant, k, seed in SUBMISSIONS
        ]

        # Scrape while the queries run; keep the freshest documents.
        queries_doc: dict = {}
        metrics_body = ""
        while any(proc.poll() is None for proc in submits):
            try:
                doc = _scrape(base + "/queries")
                if isinstance(doc, dict) and doc.get("queries"):
                    queries_doc = doc
                metrics_body = _scrape(base + "/metrics") or metrics_body
            except OSError:
                pass
            time.sleep(0.05)

        for proc, (tenant, k, _seed) in zip(submits, SUBMISSIONS):
            out, err = proc.communicate(timeout=SUBMIT_TIMEOUT_S)
            if proc.returncode != 0:
                failures.append(
                    f"submit (tenant={tenant}) exited {proc.returncode}:\n{err}"
                )
            elif f"done: top-{k}" not in out:
                failures.append(
                    f"submit (tenant={tenant}) printed no done line:\n{out}"
                )

        # One final scrape after completion: the rows persist on the board
        # until the service drops them, and the service block always lists
        # totals.
        try:
            queries_doc = _scrape(base + "/queries") or queries_doc
            metrics_body = _scrape(base + "/metrics") or metrics_body
        except OSError:
            pass

        service_block = queries_doc.get("service") or {}
        if not service_block:
            failures.append(f"/queries carried no service block: {queries_doc}")
        tenants = {
            row.get("tenant")
            for row in queries_doc.get("queries", [])
            if isinstance(row, dict)
        }
        cache_tenants = (service_block.get("cache") or {}).get("tenants") or {}
        seen = tenants | set(cache_tenants)
        for tenant in ("acme", "globex"):
            if tenant not in seen:
                failures.append(f"/queries never attributed tenant {tenant!r}")
        if "service_queries_total" not in metrics_body:
            failures.append("service_queries_total never appeared in /metrics")
    finally:
        serve.terminate()
        try:
            serve.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            serve.kill()
            serve.communicate()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "OK: 3 queries from 2 tenants submitted over HTTP, completed "
        "within their SLAs; /queries attributed both tenants and /metrics "
        "exposed service_queries_total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
