#!/usr/bin/env python
"""Performance benchmarks: parallel runner and group-comparison engine.

Three suites, all selectable via ``--suite`` (default ``all``):

``runner``
    Times one fixed workload — ``run_methods`` over several
    confidence-aware methods on a mid-size cell — executed serially and
    through the parallel experiment engine, verifies the two produce
    **identical** deterministic results (per-run cost/rounds/NDCG/precision
    and every ``MethodStats`` aggregate), and writes the measurements to
    ``BENCH_parallel_runner.json``.

``group``
    Times one parallel comparison group of ``--group-pairs`` pairs (default
    500, mixed difficulty) through both group engines — the historical
    per-pair ``sequential`` loop and the batched ``racing`` kernel — and
    writes the measurements to ``BENCH_group_engine.json``.  The engines
    draw the same judgment distribution, so total microtasks must agree
    within a few percent while wall time should not.

``faults``
    Prices the resilience machinery itself.  Three legs over one racing
    group: a plain session, the same session routed through a zero-rate
    ``FaultInjector`` with ``force=True`` (the fault-aware delivery path
    with no faults — results must be identical and the wall-time overhead
    must stay **under 5%**), and an informational leg with realistic fault
    rates.  Writes ``BENCH_fault_overhead.json``.

``lattice``
    Times one multi-run SPR workload (``run_methods(["spr"], ...)`` with
    ``--lattice-runs`` repetitions, default 8) three ways — the
    historical per-pair ``sequential`` group engine, serial racing, and
    the fused racing lattice — verifies the lattice produces **identical**
    deterministic aggregates to serial racing, and writes
    ``BENCH_lattice.json``.

``bdp``
    Times the BDP ranker's one-step-lookahead pair scorer — the
    vectorized O(K³) :func:`repro.algorithms.bdp.score_pairs` against
    the O(K⁴) scalar reference it replaces — verifies the two agree to
    float64 round-off, runs a small SPR-vs-BDP head-to-head for context,
    and writes ``BENCH_bdp.json``.  The speedup is load-invariant (both
    legs run back to back on the same host) so the bench-trend gate can
    track it.

``service``
    Prices the multi-tenant query service against bare standalone runs.
    One batch of single-tenant-per-query specs is answered three ways —
    sequential ``run_query`` calls, the same specs through a one-worker
    ``QueryService`` (pure front-door overhead: handles, admission, the
    marketplace, the shared cache), and through a multi-worker service
    (throughput).  Every spec runs cold (distinct tenants), so all three
    legs must return **identical** top-k/cost/rounds, and the serial
    service leg's per-query overhead must stay **under 10%**.  Writes
    ``BENCH_service.json``.

``apply``
    Profiles the *apply* side of a racing round.  Runs a serial
    ``--apply-runs``-seed SPR workload (default 8) twice: an unprofiled
    wall-time leg (best of ``--repeat``) and one pass under ``cProfile``,
    whose per-function ``tottime`` is attributed to four buckets —
    ``kernel`` (stopping-rule evaluation), ``draw`` (oracle sampling),
    ``bookkeeping`` (record synthesis, cache appends, charging, counters)
    and ``other`` library time.  Writes ``BENCH_apply.json`` including a
    hotspot table; the bookkeeping share is the figure the array-native
    apply path exists to shrink (see docs/performance.md).

Usage::

    PYTHONPATH=src python scripts/bench_perf.py             # all suites
    PYTHONPATH=src python scripts/bench_perf.py --quick     # CI-size
    PYTHONPATH=src python scripts/bench_perf.py --suite group --group-pairs 500
    PYTHONPATH=src python scripts/bench_perf.py --suite faults
    PYTHONPATH=src python scripts/bench_perf.py --suite lattice
    PYTHONPATH=src python scripts/bench_perf.py --suite apply --repeat 5
    PYTHONPATH=src python scripts/bench_perf.py --suite bdp
    PYTHONPATH=src python scripts/bench_perf.py --suite service

Runner speedup scales with available cores; group-engine speedup is
core-independent (it removes Python interpreter overhead, not work).  The
JSON records ``cpu_count`` so readings are interpretable across machines —
see docs/performance.md.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pathlib
import platform
import pstats
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.config import (  # noqa: E402
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
)
from repro.core.outcomes import Outcome  # noqa: E402
from repro.crowd.faults import FaultInjector  # noqa: E402
from repro.crowd.oracle import LatentScoreOracle  # noqa: E402
from repro.crowd.session import CrowdSession  # noqa: E402
from repro.crowd.workers import GaussianNoise  # noqa: E402
from repro.core.spr import spr_topk  # noqa: E402
from repro.experiments import ExperimentParams, run_methods  # noqa: E402
from repro.telemetry import MetricsRegistry, use_registry  # noqa: E402

_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = _ROOT / "BENCH_parallel_runner.json"
GROUP_OUTPUT = _ROOT / "BENCH_group_engine.json"
FAULT_OUTPUT = _ROOT / "BENCH_fault_overhead.json"
LATTICE_OUTPUT = _ROOT / "BENCH_lattice.json"
APPLY_OUTPUT = _ROOT / "BENCH_apply.json"
BDP_OUTPUT = _ROOT / "BENCH_bdp.json"
SERVICE_OUTPUT = _ROOT / "BENCH_service.json"
HISTORY_OUTPUT = _ROOT / "BENCH_history.jsonl"


def _append_history(payload: dict, path: pathlib.Path) -> None:
    """Append a compact one-line record of this run to the shared history.

    The ``BENCH_*.json`` artifacts are overwritten on every run; the
    history file accumulates one JSONL line per suite execution, so
    timings are diffable across runs and machines (``jq`` over the file,
    or plain ``git diff`` on the artifact).  Bulky per-run detail
    (per-method aggregates) is dropped; headline figures stay.
    """
    record = {
        key: value
        for key, value in payload.items()
        if key not in ("aggregates", "workload")
    }
    if "profile" in record:  # apply suite: keep the bucket split, not the
        # hotspot table or the static baseline/function-list blocks
        record["profile"] = {
            key: value
            for key, value in record["profile"].items()
            if key not in ("hotspots", "baseline", "per_round_functions")
        }
    # cpu_count plus the platform/python fingerprint the bench-trend gate
    # (scripts/check_bench_trend.py) uses to compare like with like.
    record["host"] = payload["host"]
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")

#: The fixed workload: every method is confidence-aware and mid-cost, the
#: cell is big enough that each run does real work (~seconds total).
METHODS = ("spr", "tournament", "heapsort", "quickselect")


def _deterministic_view(stats_by_method):
    """Everything that must match bit-for-bit between serial and parallel."""
    view = {}
    for method, stats in sorted(stats_by_method.items()):
        view[method] = {
            "n_runs": stats.n_runs,
            "mean_cost": stats.mean_cost,
            "std_cost": stats.std_cost,
            "mean_rounds": stats.mean_rounds,
            "std_rounds": stats.std_rounds,
            "mean_ndcg": stats.mean_ndcg,
            "std_ndcg": stats.std_ndcg,
            "mean_precision": stats.mean_precision,
            "runs": [
                (r.cost, r.rounds, r.ndcg, r.precision) for r in stats.runs
            ],
        }
    return view


def _timed(params, n_jobs):
    with use_registry(MetricsRegistry()) as registry:
        started = time.perf_counter()
        stats = run_methods(list(METHODS), params, n_jobs=n_jobs)
        elapsed = time.perf_counter() - started
    microtasks = registry.counter_value("crowd_microtasks_total")
    return stats, elapsed, microtasks


def _host() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _group_fixture(
    engine: str, n_pairs: int
) -> tuple[LatentScoreOracle, ComparisonConfig]:
    """Oracle + config over ``2 * n_pairs`` items with mixed pair difficulty.

    Score gaps cycle through easy (decided at the cold start) to hard
    (dozens of samples), so the group races realistically rather than
    resolving in one round.
    """
    gaps = np.resize(np.asarray([0.25, 0.5, 1.0, 2.0]), n_pairs)
    scores = np.zeros(2 * n_pairs)
    scores[1::2] = gaps
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(
        confidence=0.95, budget=150, min_workload=5, batch_size=10,
        group_engine=engine,
    )
    return oracle, config


def _group_session(engine: str, n_pairs: int, seed: int = 0) -> CrowdSession:
    oracle, config = _group_fixture(engine, n_pairs)
    return CrowdSession(oracle, config, seed=seed)


def bench_group(args) -> int:
    """Time one parallel group of ``args.group_pairs`` pairs on both engines."""
    n_pairs = args.group_pairs
    # Better items first, as the ranking primitives orient their calls.
    pairs = [(2 * i + 1, 2 * i) for i in range(n_pairs)]
    legs = {}
    for engine in ("sequential", "racing"):
        print(f"group leg ({engine}, {n_pairs} pairs) ...", flush=True)
        session = _group_session(engine, n_pairs)
        started = time.perf_counter()
        records = session.compare_many(pairs)
        elapsed = time.perf_counter() - started
        legs[engine] = {
            "seconds": round(elapsed, 4),
            "microtasks": session.total_cost,
            "rounds": session.total_rounds,
            "decided": sum(1 for r in records if r.outcome is not Outcome.TIE),
            "mean_workload": round(
                sum(r.workload for r in records) / len(records), 2
            ),
        }
        print(
            f"  {elapsed:.2f}s, {session.total_cost:,} microtasks, "
            f"{session.total_rounds} rounds, {legs[engine]['decided']} decided"
        )

    speedup = (
        legs["sequential"]["seconds"] / legs["racing"]["seconds"]
        if legs["racing"]["seconds"]
        else float("inf")
    )
    # Same distribution, different RNG consumption order: total spend must
    # reconcile within a few percent or one engine is buying wrong.
    cost_ratio = legs["racing"]["microtasks"] / legs["sequential"]["microtasks"]
    reconciled = 0.9 <= cost_ratio <= 1.1
    payload = {
        "benchmark": "group_engine",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _host(),
        "workload": (
            f"compare_many over one {n_pairs}-pair group "
            "(gaps cycling 0.25/0.5/1.0/2.0, sigma=1.0, B=150, I=5, eta=10)"
        ),
        "engines": legs,
        "speedup": round(speedup, 3),
        "cost_ratio_racing_vs_sequential": round(cost_ratio, 4),
        "costs_reconcile": reconciled,
    }
    args.group_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"group-engine speedup: {speedup:.2f}x "
        f"(cost ratio {cost_ratio:.3f}) -> {args.group_output}"
    )
    if not reconciled:
        print("error: engine costs diverge beyond tolerance", file=sys.stderr)
        return 1
    return 0


def bench_faults(args) -> int:
    """Price the fault-aware delivery path against the historical one.

    The zero-rate ``force=True`` leg runs the exact same judgments through
    the resilience machinery — identical results are a correctness gate,
    the wall-time ratio is the overhead the machinery costs a healthy
    platform.  Timings take the best of several repetitions to shed
    scheduler noise.
    """
    # Wall times below ~50ms are scheduler noise; the faults suite needs a
    # bigger group than the engine-comparison one to measure a few-percent
    # overhead meaningfully.  Quick mode only halves the group (the
    # vectorized apply path made the full leg so fast that quartering it
    # drops the wall time into pure noise) and adds repetitions to keep
    # the median ratio stable.
    n_pairs = args.fault_pairs if not args.quick else max(args.fault_pairs // 2, 500)
    pairs = [(2 * i + 1, 2 * i) for i in range(n_pairs)]
    repeats = 5 if args.quick else 7

    def plain():
        return _group_session("racing", n_pairs)

    def forced():
        oracle, config = _group_fixture("racing", n_pairs)
        return CrowdSession(
            FaultInjector(oracle, FaultPolicy(), force=True), config, seed=0
        )

    def faulty():
        oracle, config = _group_fixture("racing", n_pairs)
        policy = FaultPolicy(
            timeout_rate=0.05, loss_rate=0.025, duplicate_rate=0.02,
            outage_rate=0.01, seed=0,
        )
        config = config.with_(resilience=ResiliencePolicy(fault=policy))
        return CrowdSession(oracle, config, seed=0)  # session auto-wraps

    def one_run(make_session) -> tuple[float, dict]:
        session = make_session()
        started = time.perf_counter()
        records = session.compare_many(pairs)
        elapsed = time.perf_counter() - started
        return elapsed, {
            "microtasks": session.total_cost,
            "rounds": session.total_rounds,
            "decided": sum(1 for r in records if r.outcome is not Outcome.TIE),
        }

    # Interleave the legs so allocator/numpy warm-up and CPU frequency
    # drift hit all of them equally; one untimed warm-up pass first, then
    # best-of-N per leg.
    builders = {
        "plain": plain, "forced_zero_fault": forced, "faulty": faulty,
    }
    print(f"faults legs ({n_pairs} pairs, interleaved best of {repeats}) ...",
          flush=True)
    legs: dict[str, dict] = {}
    times: dict[str, list[float]] = {name: [] for name in builders}
    for name, make_session in builders.items():
        one_run(make_session)  # warm-up, untimed
    for _ in range(repeats):
        for name, make_session in builders.items():
            elapsed, summary = one_run(make_session)
            times[name].append(elapsed)
            if name not in legs or elapsed < legs[name]["seconds"]:
                summary["seconds"] = elapsed
                legs[name] = summary
    for name, summary in legs.items():
        summary["seconds"] = round(summary["seconds"], 4)
        print(f"  {name}: {summary['seconds']:.3f}s, "
              f"{summary['microtasks']:,} microtasks, "
              f"{summary['rounds']} rounds, {summary['decided']} decided")

    identical = all(
        legs["plain"][key] == legs["forced_zero_fault"][key]
        for key in ("microtasks", "rounds", "decided")
    )
    # Median of per-repetition pairwise ratios: each repetition times both
    # paths back to back, so CPU frequency drift and allocator state cancel
    # inside the ratio, and the median sheds scheduler outliers.
    ratios = sorted(
        forced / plain
        for forced, plain in zip(times["forced_zero_fault"], times["plain"])
        if plain > 0
    )
    overhead = ratios[len(ratios) // 2] - 1.0 if ratios else float("inf")
    overhead_ok = overhead < 0.05
    payload = {
        "benchmark": "fault_overhead",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _host(),
        "workload": (
            f"compare_many over one {n_pairs}-pair racing group "
            "(gaps cycling 0.25/0.5/1.0/2.0, sigma=1.0, B=150, I=5, eta=10)"
        ),
        "repeats": repeats,
        "legs": legs,
        "zero_fault_results_identical": identical,
        "zero_fault_overhead": round(overhead, 4),
        "overhead_under_5pct": overhead_ok,
    }
    args.fault_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"zero-fault overhead: {overhead * 100:.2f}% "
        f"(identical results: {identical}) -> {args.fault_output}"
    )
    if not identical:
        print("error: forced zero-fault leg diverges from the plain path",
              file=sys.stderr)
        return 1
    if not overhead_ok:
        print("error: resilience machinery costs >= 5% on a healthy platform",
              file=sys.stderr)
        return 1
    return 0


def bench_lattice(args) -> int:
    """Time one multi-run SPR workload on all three execution engines.

    Sequential vs racing isolates the batched group kernel; racing vs
    lattice isolates the cross-run fusion.  Both speedups are
    core-independent — the lattice removes numpy dispatch overhead, it
    does not use more cores.  The lattice leg must reproduce serial
    racing bit for bit (aggregates and total microtasks) or the script
    exits non-zero.
    """
    n_runs = args.lattice_runs
    n_items = 20 if args.quick else 30
    single_core = os.cpu_count() == 1
    if single_core:
        print(
            "warning: lattice legs on a 1-core host — lane threads share "
            "one core, so the reading mixes fusion gains with GIL/scheduler "
            "contention; treat the speedup as a lower bound",
            file=sys.stderr,
        )
    common = dict(
        dataset=args.dataset, n_items=n_items, k=5, n_runs=n_runs, seed=0
    )
    racing_params = ExperimentParams(**common)
    sequential_params = ExperimentParams(**common, group_engine="sequential")

    builders = {
        "sequential": lambda: run_methods(["spr"], sequential_params, n_jobs=1),
        "racing_serial": lambda: run_methods(["spr"], racing_params, n_jobs=1),
        "lattice": lambda: run_methods(["spr"], racing_params, engine="lattice"),
    }
    repeats = 2 if args.quick else args.repeat
    print(
        f"lattice legs (spr, {args.dataset}, N={n_items}, n_runs={n_runs}, "
        f"interleaved best of {repeats}) ...", flush=True,
    )
    seconds = {name: float("inf") for name in builders}
    views: dict[str, dict] = {}
    microtasks: dict[str, float] = {}
    builders["racing_serial"]()  # warm-up: loads the dataset cache, untimed
    for _ in range(repeats):
        for name, leg in builders.items():
            with use_registry(MetricsRegistry()) as registry:
                started = time.perf_counter()
                stats = leg()
                elapsed = time.perf_counter() - started
            seconds[name] = min(seconds[name], elapsed)
            views[name] = _deterministic_view(stats)
            microtasks[name] = registry.counter_value("crowd_microtasks_total")
    for name in builders:
        print(f"  {name}: {seconds[name]:.3f}s, "
              f"{microtasks[name]:,.0f} microtasks")

    identical = json.dumps(views["lattice"], sort_keys=True) == json.dumps(
        views["racing_serial"], sort_keys=True
    ) and microtasks["lattice"] == microtasks["racing_serial"]
    speedup_seq = (
        seconds["sequential"] / seconds["lattice"]
        if seconds["lattice"] else float("inf")
    )
    speedup_racing = (
        seconds["racing_serial"] / seconds["lattice"]
        if seconds["lattice"] else float("inf")
    )
    payload = {
        "benchmark": "lattice",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "single_core_warning": single_core,
        "host": _host(),
        "workload": (
            f"run_methods(['spr'], dataset={args.dataset!r}, N={n_items}, "
            f"k=5, n_runs={n_runs}, seed=0)"
        ),
        "quick": args.quick,
        "legs": {
            name: {
                "seconds": round(seconds[name], 4),
                "microtasks": microtasks[name],
            }
            for name in builders
        },
        "speedup_vs_sequential": round(speedup_seq, 3),
        "speedup_vs_racing": round(speedup_racing, 3),
        "aggregates_identical": identical,
        "aggregates": views["lattice"],
    }
    args.lattice_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"lattice speedup: {speedup_seq:.2f}x vs sequential, "
        f"{speedup_racing:.2f}x vs serial racing "
        f"(identical aggregates: {identical}) -> {args.lattice_output}"
    )
    if not identical:
        print("error: lattice results diverge from serial racing",
              file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# apply-path profiling
# ----------------------------------------------------------------------
#: Function-name buckets for profile attribution.  ``tottime`` sums (not
#: cumulative — no double counting) over the library's own frames, keyed
#: by what a racing round spends its time on.
APPLY_KERNEL = (
    "_evaluate_group", "_evaluate_plans", "decision_codes",
    "sample_variance", "t_quantiles", "_eval_sig",
)
APPLY_DRAW = ("_plan_round", "draw_pairs", "sample", "judge_many")
APPLY_BOOKKEEPING = (
    "_apply_round", "_replay_cache", "_commit_round", "_faulty_round",
    "race_group", "compare_many", "from_race", "from_arrays",
    "charge_cost", "charge_rounds", "charge_many", "charge",
    "begin_comparison", "begin_comparisons", "inc", "add", "observe",
    "observe_many", "record_comparison", "append", "append_rows",
    "extend_raw", "defer_rows", "_drain", "settle", "bags_for",
    "moments", "_key", "_instruments", "emit",
)
#: The bookkeeping functions a pool executes on *every* round — the
#: per-round tax this suite tracks.  Everything bookkeeping outside this
#: list is per-pool work (construction, cache replay, record synthesis,
#: and the deferred cache drain, which absorbs whole pools' worth of
#: queued rounds in one pass).
APPLY_PER_ROUND = (
    "_apply_round", "_commit_round", "_faulty_round", "defer_rows",
    "charge_many", "charge_cost", "charge_rounds", "charge",
    "begin_comparison", "begin_comparisons", "inc", "add",
    "observe", "observe_many", "record_comparison", "emit",
)
#: Pre-rewrite reference, measured on commit 2b05569 (eager per-round
#: ``JudgmentCache.append``) with this exact workload and bucketing: the
#: minimum per bucket over 8 interleaved cProfile passes on the 1-core
#: bench host.  For the baseline tree, ``append`` ran inside every round
#: and is counted in its ``per_round`` figure.  ``per_round_over_kernel``
#: is the load-invariant yardstick: the stopping-rule kernel is untouched
#: by the bookkeeping rewrite, so per-round cost expressed in kernel
#: units cancels host-load swings between the frozen baseline and a
#: fresh measurement.
APPLY_BASELINE = {
    "commit": "2b05569",
    "buckets_tottime_seconds": {
        "kernel": 0.0592, "draw": 0.0110, "bookkeeping": 0.0532,
        "other": 0.0394, "total": 0.2719,
    },
    "bookkeeping_split": {"per_round": 0.0257, "per_pool": 0.0250},
    "per_round_over_kernel": round(0.0257 / 0.0592, 4),
    "measured": "min per bucket over 8 interleaved cProfile passes",
}


def _bucket_profile(prof: cProfile.Profile) -> tuple[dict, list]:
    """Attribute a profile's per-function ``tottime`` to round phases.

    Returns ``(buckets, hotspots)``: bucket sums in seconds (``total``
    covers *everything*, library or not), and the library rows sorted by
    own time for the JSON hotspot table.
    """
    buckets = {
        "kernel": 0.0, "draw": 0.0, "bookkeeping": 0.0, "other": 0.0,
        "per_round": 0.0,
    }
    hotspots = []
    total = 0.0
    for (fn, _line, name), (cc, nc, tt, ct, _callers) in (
        pstats.Stats(prof).stats.items()
    ):
        total += tt
        if "/repro/" not in fn.replace("\\", "/"):
            continue
        if name in APPLY_KERNEL:
            bucket = "kernel"
        elif name in APPLY_DRAW:
            bucket = "draw"
        elif name in APPLY_BOOKKEEPING or (
            name == "__init__" and fn.endswith("pool.py")
        ):
            bucket = "bookkeeping"
            if name in APPLY_PER_ROUND:
                buckets["per_round"] += tt
        else:
            bucket = "other"
        buckets[bucket] += tt
        hotspots.append(
            {
                "function": f"{fn.split('/')[-1]}:{name}",
                "bucket": bucket,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
                "calls": nc,
            }
        )
    buckets = {key: round(value, 4) for key, value in buckets.items()}
    buckets["total"] = round(total, 4)
    hotspots.sort(key=lambda row: -row["tottime"])
    return buckets, [row for row in hotspots if row["tottime"] >= 0.0005]


def bench_apply(args) -> int:
    """Profile the apply side of racing rounds on a serial SPR workload.

    Serial on purpose: ``cProfile`` only observes the calling thread, so
    the lattice's lane threads would hide exactly the code under study.
    The wall-time figure is measured unprofiled (best of ``--repeat``);
    the bucket split comes from one separate profiled pass.
    """
    n_runs = max(args.apply_runs // 2, 2) if args.quick else args.apply_runs
    n_items = 30

    def one(seed: int):
        scores = np.random.default_rng(seed + 7000).normal(0.0, 2.5, n_items)
        config = ComparisonConfig(
            confidence=0.95, budget=400, min_workload=5, batch_size=10
        )
        session = CrowdSession(
            LatentScoreOracle(scores, GaussianNoise(1.0)), config, seed=seed
        )
        return spr_topk(session, list(range(n_items)), 5)

    def sweep():
        with use_registry(MetricsRegistry()) as registry:
            for seed in range(n_runs):
                one(seed)
            return registry.counter_value("crowd_microtasks_total")

    print(
        f"apply leg (serial spr, N={n_items}, R={n_runs}, "
        f"best of {args.repeat}) ...", flush=True,
    )
    microtasks = sweep()  # warm-up, untimed
    wall = float("inf")
    for _ in range(max(args.repeat, 1)):
        started = time.perf_counter()
        sweep()
        wall = min(wall, time.perf_counter() - started)

    # Profile best-of-repeat as well: the 1-core host's load swings move
    # every bucket by 10-30%, and the minimum per bucket converges on the
    # true floor the same way the unprofiled wall minimum does.
    buckets, hotspots = None, None
    for _ in range(max(args.repeat, 1)):
        prof = cProfile.Profile()
        with use_registry(MetricsRegistry()):
            prof.enable()
            for seed in range(n_runs):
                one(seed)
            prof.disable()
        pass_buckets, pass_hotspots = _bucket_profile(prof)
        if buckets is None or pass_buckets["per_round"] < buckets["per_round"]:
            hotspots = pass_hotspots
        if buckets is None:
            buckets = pass_buckets
        else:
            buckets = {
                key: min(value, pass_buckets[key])
                for key, value in buckets.items()
            }
    per_round = buckets.pop("per_round")
    per_pool = round(buckets["bookkeeping"] - per_round, 4)
    bookkeeping_share = (
        buckets["bookkeeping"] / buckets["total"] if buckets["total"] else 0.0
    )
    # Acceptance metric: the per-round bookkeeping tax relative to the
    # frozen pre-rewrite baseline, in kernel units so a loaded host
    # cannot fake (or hide) a regression against the frozen constants.
    per_round_over_kernel = (
        per_round / buckets["kernel"] if buckets["kernel"] else 0.0
    )
    baseline_norm = APPLY_BASELINE["per_round_over_kernel"]
    per_round_reduction = (
        baseline_norm / per_round_over_kernel if per_round_over_kernel else 0.0
    )

    payload = {
        "benchmark": "apply_path",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "host": _host(),
        "workload": (
            f"spr_topk, N={n_items}, k=5, B=400, I=5, eta=10, sigma=1.0, "
            f"seeds 0..{n_runs - 1}, serial"
        ),
        "quick": args.quick,
        "repeat": args.repeat,
        "wall_seconds": round(wall, 4),
        "total_microtasks": microtasks,
        "profile": {
            "buckets_tottime_seconds": buckets,
            "bookkeeping_split": {
                "per_round": round(per_round, 4),
                "per_pool": per_pool,
            },
            "per_round_functions": list(APPLY_PER_ROUND),
            "per_round_over_kernel": round(per_round_over_kernel, 4),
            "bookkeeping_share": round(bookkeeping_share, 4),
            "baseline": APPLY_BASELINE,
            "per_round_reduction_vs_baseline": round(per_round_reduction, 2),
            "hotspots": hotspots[:25],
        },
    }
    args.apply_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"  wall {wall:.3f}s ({microtasks:,.0f} microtasks); profile: "
        + ", ".join(
            f"{name} {buckets[name]:.4f}s"
            for name in ("kernel", "draw", "bookkeeping", "other", "total")
        )
    )
    print(
        f"  bookkeeping split: per-round {per_round:.4f}s + per-pool "
        f"{per_pool:.4f}s ({bookkeeping_share * 100:.1f}% of profiled time)"
    )
    print(
        f"  per-round tax: {per_round_over_kernel:.3f} kernel-units vs "
        f"baseline {baseline_norm:.3f} -> {per_round_reduction:.2f}x "
        f"reduction -> {args.apply_output}"
    )
    return 0


def bench_bdp(args) -> int:
    """Time the vectorized BDP pair scorer against its scalar reference.

    Both legs score the same shape vector; the vectorized result must
    match the reference to float64 round-off or the script exits
    non-zero.  The speedup is a within-host ratio, so the bench-trend
    gate can compare it across runs.  A small SPR-vs-BDP head-to-head
    rides along for cost/quality context.
    """
    from repro.algorithms.bdp import score_pairs, score_pairs_reference

    n_shapes = 12 if args.quick else 18
    repeats = max(args.repeat, 1)
    shapes = np.random.default_rng(11).uniform(0.2, 8.0, n_shapes)
    print(
        f"bdp scorer legs (K={n_shapes}, interleaved best of {repeats}) ...",
        flush=True,
    )
    fast = score_pairs(shapes)  # warm-up both legs, untimed
    slow = score_pairs_reference(shapes)
    matches = bool(np.allclose(fast, slow, rtol=1e-9, equal_nan=True))
    times = {"vectorized": float("inf"), "reference": float("inf")}
    for _ in range(repeats):
        started = time.perf_counter()
        score_pairs(shapes)
        times["vectorized"] = min(times["vectorized"], time.perf_counter() - started)
        started = time.perf_counter()
        score_pairs_reference(shapes)
        times["reference"] = min(times["reference"], time.perf_counter() - started)
    speedup = (
        times["reference"] / times["vectorized"]
        if times["vectorized"] else float("inf")
    )
    print(
        f"  vectorized {times['vectorized'] * 1e3:.2f}ms, "
        f"reference {times['reference'] * 1e3:.2f}ms "
        f"({speedup:.1f}x, matches: {matches})"
    )

    n_runs = 2 if args.quick else 4
    params = ExperimentParams(
        dataset=args.dataset, n_items=15, k=3, n_runs=n_runs, seed=0,
        budget=300, min_workload=5, batch_size=10,
    )
    print(f"head-to-head leg (spr vs bdp, {args.dataset}, N=15, "
          f"n_runs={n_runs}) ...", flush=True)
    with use_registry(MetricsRegistry()):
        started = time.perf_counter()
        stats = run_methods(["spr", "bdp"], params, n_jobs=1)
        head_seconds = time.perf_counter() - started
    head = {
        method: {
            "mean_cost": stats[method].mean_cost,
            "mean_rounds": stats[method].mean_rounds,
            "mean_ndcg": round(stats[method].mean_ndcg, 4),
        }
        for method in ("spr", "bdp")
    }
    print(
        f"  {head_seconds:.2f}s; TMC spr {head['spr']['mean_cost']:,.0f} vs "
        f"bdp {head['bdp']['mean_cost']:,.0f}"
    )

    payload = {
        "benchmark": "bdp",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _host(),
        "workload": (
            f"score_pairs vs score_pairs_reference at K={n_shapes}; "
            f"spr-vs-bdp on {args.dataset}, N=15, k=3, n_runs={n_runs}"
        ),
        "quick": args.quick,
        "repeat": repeats,
        "scorer_seconds": {
            name: round(value, 6) for name, value in times.items()
        },
        "scorer_speedup": round(speedup, 3),
        "scorer_matches_reference": matches,
        "head_to_head": head,
    }
    args.bdp_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"bdp scorer speedup: {speedup:.1f}x at K={n_shapes} "
        f"(matches reference: {matches}) -> {args.bdp_output}"
    )
    if not matches:
        print("error: vectorized scorer diverges from the scalar reference",
              file=sys.stderr)
        return 1
    return 0


def bench_service(args) -> int:
    """Price the query service's front door against bare standalone runs.

    Every spec gets its own tenant, so each service query starts on a
    cold cache namespace and must reproduce the standalone run bit for
    bit — what remains is pure service machinery (handles, admission,
    the fair marketplace's spend gate, cache wiring).  The overhead
    figure is the median of per-repetition pairwise ratios between
    interleaved serial legs, the same noise handling as the faults
    suite: host speed drift cancels inside each ratio.
    """
    from repro.service import QueryService, QuerySpec, run_query

    n_queries = max(args.service_queries // 2, 4) if args.quick else args.service_queries
    n_items = 60 if args.quick else 100
    repeats = 5 if args.quick else 7
    specs = [
        QuerySpec(
            method="spr", k=5, dataset=args.dataset, n_items=n_items,
            seed=seed, tenant=f"bench-{seed}",
        )
        for seed in range(n_queries)
    ]

    def view(outcomes):
        return [(list(o.topk), o.cost, o.rounds) for o in outcomes]

    def standalone():
        with use_registry(MetricsRegistry()):
            started = time.perf_counter()
            outcomes = [run_query(spec) for spec in specs]
            return time.perf_counter() - started, outcomes

    def through_service(workers: int):
        with use_registry(MetricsRegistry()):
            started = time.perf_counter()
            with QueryService(
                max_workers=workers, registry=MetricsRegistry()
            ) as service:
                handles = [service.submit(spec) for spec in specs]
                outcomes = [h.result(timeout=600) for h in handles]
            return time.perf_counter() - started, outcomes

    print(
        f"service legs (spr, {args.dataset}, N={n_items}, "
        f"{n_queries} queries/{n_queries} tenants, interleaved best of "
        f"{repeats}) ...", flush=True,
    )
    standalone()  # warm-up: loads the dataset cache, untimed
    times = {"standalone_serial": [], "service_serial": []}
    views = {}
    for _ in range(repeats):
        elapsed, outcomes = standalone()
        times["standalone_serial"].append(elapsed)
        views["standalone_serial"] = view(outcomes)
        elapsed, outcomes = through_service(workers=1)
        times["service_serial"].append(elapsed)
        views["service_serial"] = view(outcomes)
    concurrent_s = float("inf")
    for _ in range(min(repeats, 3)):
        elapsed, outcomes = through_service(workers=args.jobs)
        concurrent_s = min(concurrent_s, elapsed)
        views["service_concurrent"] = view(outcomes)

    identical = (
        views["standalone_serial"] == views["service_serial"]
        == views["service_concurrent"]
    )
    ratios = sorted(
        service / bare
        for service, bare in zip(
            times["service_serial"], times["standalone_serial"]
        )
        if bare > 0
    )
    overhead_ratio = ratios[len(ratios) // 2] if ratios else float("inf")
    overhead = overhead_ratio - 1.0
    overhead_ok = overhead < 0.10
    best = {name: min(values) for name, values in times.items()}
    throughput = n_queries / concurrent_s if concurrent_s else float("inf")
    for name, seconds in {**best, "service_concurrent": concurrent_s}.items():
        print(f"  {name}: {seconds:.3f}s "
              f"({seconds / n_queries * 1e3:.1f}ms/query)")

    payload = {
        "benchmark": "service",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _host(),
        "workload": (
            f"spr k=5 on {args.dataset} N={n_items}, {n_queries} queries "
            f"({n_queries} tenants, cold cache), seeds 0..{n_queries - 1}"
        ),
        "quick": args.quick,
        "repeats": repeats,
        "queries": n_queries,
        "workers_concurrent": args.jobs,
        "legs": {
            "standalone_serial": {"seconds": round(best["standalone_serial"], 4)},
            "service_serial": {"seconds": round(best["service_serial"], 4)},
            "service_concurrent": {"seconds": round(concurrent_s, 4)},
        },
        "overhead_ratio_service_vs_standalone": round(overhead_ratio, 4),
        "per_query_overhead": round(overhead, 4),
        "overhead_under_10pct": overhead_ok,
        "throughput_queries_per_second": round(throughput, 3),
        "concurrency_speedup": round(
            best["standalone_serial"] / concurrent_s, 3
        ) if concurrent_s else float("inf"),
        "results_identical": identical,
    }
    args.service_output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"service overhead: {overhead * 100:.2f}% per query, "
        f"{throughput:.1f} q/s at {args.jobs} workers "
        f"(identical results: {identical}) -> {args.service_output}"
    )
    if not identical:
        print("error: service results diverge from standalone runs",
              file=sys.stderr)
        return 1
    if not overhead_ok:
        print("error: service front door costs >= 10% per query",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("all", "runner", "group", "faults", "lattice", "apply",
                 "bdp", "service"),
        default="all", help="which benchmark(s) to run")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel leg (default 4)")
    parser.add_argument("--runs", type=int, default=None,
                        help="override the per-method run count")
    parser.add_argument("--quick", action="store_true",
                        help="CI-size workload (fewer, smaller runs)")
    parser.add_argument("--dataset", default="jester")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--group-pairs", type=int, default=500,
                        help="pairs in the group-engine benchmark (default 500)")
    parser.add_argument("--group-output", type=pathlib.Path,
                        default=GROUP_OUTPUT)
    parser.add_argument("--fault-pairs", type=int, default=4000,
                        help="pairs in the fault-overhead benchmark "
                        "(default 4000; --quick quarters it)")
    parser.add_argument("--fault-output", type=pathlib.Path,
                        default=FAULT_OUTPUT)
    parser.add_argument("--lattice-runs", type=int, default=8,
                        help="runs raced in the lattice benchmark (default 8)")
    parser.add_argument("--lattice-output", type=pathlib.Path,
                        default=LATTICE_OUTPUT)
    parser.add_argument("--apply-runs", type=int, default=8,
                        help="seeded SPR runs in the apply-path benchmark "
                        "(default 8; --quick halves it)")
    parser.add_argument("--apply-output", type=pathlib.Path,
                        default=APPLY_OUTPUT)
    parser.add_argument("--bdp-output", type=pathlib.Path,
                        default=BDP_OUTPUT)
    parser.add_argument("--service-queries", type=int, default=8,
                        help="queries in the service benchmark batch "
                        "(default 8; --quick halves it)")
    parser.add_argument("--service-output", type=pathlib.Path,
                        default=SERVICE_OUTPUT)
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-time repetitions per timed leg; the best "
                        "is reported (default 3)")
    parser.add_argument("--history", type=pathlib.Path, default=HISTORY_OUTPUT,
                        help="JSONL file accumulating one line per suite run "
                        f"(default {HISTORY_OUTPUT.name})")
    args = parser.parse_args(argv)

    # Readings are meaningless without knowing the iron: say it up front,
    # and it travels in every payload as host.cpu_count.
    print(f"host: {os.cpu_count()} CPU core(s), {platform.platform()}, "
          f"python {platform.python_version()}")

    if args.suite in ("all", "apply"):
        status = bench_apply(args)
        if status or args.suite == "apply":
            return status

    if args.suite in ("all", "group"):
        status = bench_group(args)
        if status or args.suite == "group":
            return status

    if args.suite in ("all", "faults"):
        status = bench_faults(args)
        if status or args.suite == "faults":
            return status

    if args.suite in ("all", "lattice"):
        status = bench_lattice(args)
        if status or args.suite == "lattice":
            return status

    if args.suite in ("all", "bdp"):
        status = bench_bdp(args)
        if status or args.suite == "bdp":
            return status

    if args.suite in ("all", "service"):
        status = bench_service(args)
        if status or args.suite == "service":
            return status

    n_runs = args.runs if args.runs is not None else (8 if args.quick else 16)
    n_items = 20 if args.quick else 30
    params = ExperimentParams(
        dataset=args.dataset, n_items=n_items, k=5, n_runs=n_runs, seed=0
    )
    workload = (
        f"run_methods({list(METHODS)}, dataset={args.dataset!r}, "
        f"N={n_items}, k=5, n_runs={n_runs}, seed=0)"
    )
    print(f"workload: {workload}")

    print("serial leg (n_jobs=1) ...", flush=True)
    serial_stats, serial_s, serial_microtasks = _timed(params, n_jobs=1)
    print(f"  {serial_s:.2f}s, {serial_microtasks:,.0f} microtasks")

    print(f"parallel leg (n_jobs={args.jobs}) ...", flush=True)
    parallel_stats, parallel_s, parallel_microtasks = _timed(params, args.jobs)
    print(f"  {parallel_s:.2f}s, {parallel_microtasks:,.0f} microtasks")

    serial_view = _deterministic_view(serial_stats)
    parallel_view = _deterministic_view(parallel_stats)
    identical = json.dumps(serial_view, sort_keys=True) == json.dumps(
        parallel_view, sort_keys=True
    ) and serial_microtasks == parallel_microtasks

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    payload = {
        "benchmark": "parallel_runner",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": _host(),
        "workload": workload,
        "quick": args.quick,
        "jobs": args.jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "aggregates_identical": identical,
        "total_microtasks": serial_microtasks,
        "aggregates": serial_view,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    _append_history(payload, args.history)
    print(
        f"speedup: {speedup:.2f}x on {os.cpu_count()} CPUs "
        f"(identical aggregates: {identical}) -> {args.output}"
    )
    if not identical:
        print("error: parallel results diverge from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
