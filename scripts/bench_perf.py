#!/usr/bin/env python
"""Performance benchmark: serial vs process-pool experiment runs.

Times one fixed workload — ``run_methods`` over several confidence-aware
methods on a mid-size cell — executed serially and through the parallel
experiment engine, verifies the two produce **identical** deterministic
results (per-run cost/rounds/NDCG/precision and every ``MethodStats``
aggregate), and writes the measurements to ``BENCH_parallel_runner.json``
so the perf trajectory of the engine is recorded run over run.

Usage::

    PYTHONPATH=src python scripts/bench_perf.py             # full workload
    PYTHONPATH=src python scripts/bench_perf.py --quick     # CI-size
    PYTHONPATH=src python scripts/bench_perf.py --jobs 4 --output out.json

Speedup scales with available cores (the work units are independent
processes); on a single-core machine the parallel path measures pool
overhead only.  The JSON records ``cpu_count`` so readings are
interpretable across machines — see docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ExperimentParams, run_methods  # noqa: E402
from repro.telemetry import MetricsRegistry, use_registry  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel_runner.json"

#: The fixed workload: every method is confidence-aware and mid-cost, the
#: cell is big enough that each run does real work (~seconds total).
METHODS = ("spr", "tournament", "heapsort", "quickselect")


def _deterministic_view(stats_by_method):
    """Everything that must match bit-for-bit between serial and parallel."""
    view = {}
    for method, stats in sorted(stats_by_method.items()):
        view[method] = {
            "n_runs": stats.n_runs,
            "mean_cost": stats.mean_cost,
            "std_cost": stats.std_cost,
            "mean_rounds": stats.mean_rounds,
            "std_rounds": stats.std_rounds,
            "mean_ndcg": stats.mean_ndcg,
            "std_ndcg": stats.std_ndcg,
            "mean_precision": stats.mean_precision,
            "runs": [
                (r.cost, r.rounds, r.ndcg, r.precision) for r in stats.runs
            ],
        }
    return view


def _timed(params, n_jobs):
    with use_registry(MetricsRegistry()) as registry:
        started = time.perf_counter()
        stats = run_methods(list(METHODS), params, n_jobs=n_jobs)
        elapsed = time.perf_counter() - started
    microtasks = registry.counter_value("crowd_microtasks_total")
    return stats, elapsed, microtasks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel leg (default 4)")
    parser.add_argument("--runs", type=int, default=None,
                        help="override the per-method run count")
    parser.add_argument("--quick", action="store_true",
                        help="CI-size workload (fewer, smaller runs)")
    parser.add_argument("--dataset", default="jester")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    n_runs = args.runs if args.runs is not None else (8 if args.quick else 16)
    n_items = 20 if args.quick else 30
    params = ExperimentParams(
        dataset=args.dataset, n_items=n_items, k=5, n_runs=n_runs, seed=0
    )
    workload = (
        f"run_methods({list(METHODS)}, dataset={args.dataset!r}, "
        f"N={n_items}, k=5, n_runs={n_runs}, seed=0)"
    )
    print(f"workload: {workload}")

    print("serial leg (n_jobs=1) ...", flush=True)
    serial_stats, serial_s, serial_microtasks = _timed(params, n_jobs=1)
    print(f"  {serial_s:.2f}s, {serial_microtasks:,.0f} microtasks")

    print(f"parallel leg (n_jobs={args.jobs}) ...", flush=True)
    parallel_stats, parallel_s, parallel_microtasks = _timed(params, args.jobs)
    print(f"  {parallel_s:.2f}s, {parallel_microtasks:,.0f} microtasks")

    serial_view = _deterministic_view(serial_stats)
    parallel_view = _deterministic_view(parallel_stats)
    identical = json.dumps(serial_view, sort_keys=True) == json.dumps(
        parallel_view, sort_keys=True
    ) and serial_microtasks == parallel_microtasks

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    payload = {
        "benchmark": "parallel_runner",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workload": workload,
        "quick": args.quick,
        "jobs": args.jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        "aggregates_identical": identical,
        "total_microtasks": serial_microtasks,
        "aggregates": serial_view,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"speedup: {speedup:.2f}x on {os.cpu_count()} CPUs "
        f"(identical aggregates: {identical}) -> {args.output}"
    )
    if not identical:
        print("error: parallel results diverge from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
